"""Cross-process telemetry: worker collection, deterministic merge."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.perf.executor import Telemetry, current_telemetry, pmap

pytestmark = pytest.mark.perf


def observed(x):
    """Module-level (picklable) body that records into the active telemetry."""
    telemetry = current_telemetry()
    if telemetry is not None:
        with telemetry.spans.span("cell", x=x):
            telemetry.metrics.counter("cells_total").inc()
            telemetry.metrics.histogram("cost", buckets=(10, 100)).observe(x)
            telemetry.metrics.gauge("last_x").set(x)
    return x * x


def plain(x):
    return x + 1


def run(workers, chunksize=None, items=range(8)):
    telemetry = Telemetry()
    stats = {}
    results = pmap(observed, list(items), max_workers=workers,
                   chunksize=chunksize, stats=stats, telemetry=telemetry)
    return results, telemetry, stats


class TestSerialCollection:
    def test_serial_records_into_the_given_telemetry(self):
        results, telemetry, stats = run(workers=1)
        assert results == [x * x for x in range(8)]
        assert stats["mode"] == "serial"
        snapshot = telemetry.metrics.snapshot()
        assert snapshot["cells_total"]["series"][0]["value"] == 8
        assert len(telemetry.spans) == 8
        assert all(s.process == "main" for s in telemetry.spans)

    def test_no_telemetry_means_no_ambient_context(self):
        assert current_telemetry() is None
        assert pmap(observed, [1, 2]) == [1, 4]
        assert current_telemetry() is None

    def test_active_telemetry_restored_after_pmap(self):
        telemetry = Telemetry()
        pmap(observed, [1], max_workers=1, telemetry=telemetry)
        assert current_telemetry() is None


class TestCrossProcessMerge:
    def test_parallel_metrics_equal_serial_bit_for_bit(self):
        _, serial, _ = run(workers=1)
        results, parallel, stats = run(workers=2)
        assert stats["mode"] == "parallel"
        assert results == [x * x for x in range(8)]
        assert parallel.metrics.to_json() == serial.metrics.to_json()

    def test_chunked_equals_unchunked(self):
        _, chunked, _ = run(workers=2, chunksize=1)
        _, coarse, _ = run(workers=2, chunksize=4)
        _, serial, _ = run(workers=1)
        assert chunked.metrics.to_json() == serial.metrics.to_json()
        assert coarse.metrics.to_json() == serial.metrics.to_json()

    def test_worker_counts_independent_of_pool_size(self):
        baselines = [run(workers=n)[1].metrics.to_json() for n in (1, 2, 3)]
        assert len(set(baselines)) == 1

    def test_gauge_takes_serial_program_order(self):
        _, parallel, _ = run(workers=2, chunksize=1)
        snapshot = parallel.metrics.snapshot()
        # Last item in submission order wins, as it would serially.
        assert snapshot["last_x"]["series"][0]["value"] == 7

    def test_spans_grafted_with_worker_labels(self):
        _, serial, _ = run(workers=1)
        _, parallel, stats = run(workers=2, chunksize=1)
        assert stats["mode"] == "parallel"
        assert parallel.spans.structure() == serial.spans.structure()
        labels = {s.process for s in parallel.spans}
        assert labels and all(l.startswith("worker-") for l in labels)

    def test_histogram_exactness_for_integer_observations(self):
        _, serial, _ = run(workers=1, items=range(64))
        _, parallel, _ = run(workers=4, chunksize=3, items=range(64))
        a = serial.metrics.snapshot()["cost"]["series"][0]
        b = parallel.metrics.snapshot()["cost"]["series"][0]
        assert a == b
        assert a["sum"] == sum(range(64))


class TestRegistryMerge:
    def test_merge_type_conflict_raises(self):
        mine, theirs = MetricsRegistry(), MetricsRegistry()
        mine.counter("x").inc()
        theirs.gauge("x").set(1)
        with pytest.raises(ValueError):
            mine.merge(theirs)

    def test_merge_bucket_conflict_raises(self):
        mine, theirs = MetricsRegistry(), MetricsRegistry()
        mine.histogram("h", buckets=(1, 2)).observe(1)
        theirs.histogram("h", buckets=(1, 3)).observe(1)
        with pytest.raises(ValueError):
            mine.merge(theirs)

    def test_merge_into_empty_copies_everything(self):
        theirs = MetricsRegistry()
        theirs.counter("c", labels={"k": "v"}).inc(2)
        theirs.histogram("h", buckets=(10,)).observe(3)
        theirs.gauge("g").set(1.5)
        mine = MetricsRegistry().merge(theirs)
        assert mine.to_json() == theirs.to_json()

    def test_merge_chains(self):
        a, b, c = MetricsRegistry(), MetricsRegistry(), MetricsRegistry()
        for registry in (a, b, c):
            registry.counter("n").inc()
        assert a.merge(b).merge(c) is a
        assert a.snapshot()["n"]["series"][0]["value"] == 3


class TestTelemetryDefaults:
    def test_worker_label_stamps_span_process(self):
        telemetry = Telemetry(worker="worker-42")
        assert telemetry.spans.process == "worker-42"
        assert telemetry.worker == "worker-42"

    def test_explicit_components_kept(self):
        registry = MetricsRegistry()
        telemetry = Telemetry(metrics=registry)
        assert telemetry.metrics is registry
