"""Parallel/serial and cold/warm-cache equivalence.

The acceptance bar for the perf tier: fanning work out over worker
processes, or serving it from the run cache, must be *invisible* in
the results -- identical rows, identical samples, identical Figure 4
cells.
"""

import pytest

import repro.experiments.figure4 as figure4
from repro.experiments.figure4 import figure4_sweep
from repro.experiments.runner import sweep
from repro.perf.cache import RunCache
from repro.simulators.batch import replicate

pytestmark = pytest.mark.perf


def fake_measure(a, b):
    return {"sum": a + b, "product": a * b}


def fake_sample(seed):
    return 10.0 + 0.25 * seed


class TestSweepEquivalence:
    def test_rows_identical_across_worker_counts(self):
        grid = {"a": [1, 2, 3], "b": [10, 20]}
        serial = sweep(fake_measure, grid, max_workers=1)
        parallel = sweep(fake_measure, grid, max_workers=4)
        assert parallel.rows == serial.rows
        assert parallel.parameters == serial.parameters

    def test_cache_hits_skip_the_measure(self, tmp_path):
        cache = RunCache(tmp_path)
        grid = {"a": [1, 2, 3], "b": [10, 20]}
        cold = sweep(fake_measure, grid, cache=cache, cache_tag="equiv")
        assert cache.stats()["misses"] == 6 and cache.stats()["hits"] == 0

        def exploding_measure(a, b):
            raise AssertionError("warm run must not compute")

        warm = sweep(exploding_measure, grid, cache=cache, cache_tag="equiv")
        assert warm.rows == cold.rows
        assert cache.stats()["hits"] == 6
        assert cache.hit_rate == 0.5

    def test_partial_warm_only_computes_new_cells(self, tmp_path):
        cache = RunCache(tmp_path)
        sweep(fake_measure, {"a": [1, 2], "b": [10]}, cache=cache, cache_tag="grow")
        grown = sweep(fake_measure, {"a": [1, 2, 3], "b": [10]},
                      cache=cache, cache_tag="grow")
        assert cache.stats()["hits"] == 2
        assert cache.stats()["misses"] == 2 + 1
        assert grown.column("sum") == [11, 12, 13]


class TestReplicationEquivalence:
    def test_samples_identical_across_worker_counts(self):
        serial = replicate("eq", fake_sample, 8, max_workers=1)
        parallel = replicate("eq", fake_sample, 8, max_workers=4)
        assert parallel.samples == serial.samples
        assert parallel.mean == serial.mean

    def test_cache_hit_determinism(self, tmp_path):
        cache = RunCache(tmp_path)
        cold = replicate("rep", fake_sample, 5, cache=cache)

        def exploding_sample(seed):
            raise AssertionError("warm run must not compute")

        warm = replicate("rep", exploding_sample, 5, cache=cache)
        assert warm.samples == cold.samples
        assert cache.stats()["hits"] == 5

    def test_closure_measure_still_parallel_safe(self):
        base = 3.0
        serial = replicate("cl", lambda s: base + s, 4, max_workers=1)
        parallel = replicate("cl", lambda s: base + s, 4, max_workers=4)
        assert parallel.samples == serial.samples


@pytest.mark.slow
class TestFigure4Equivalence:
    def test_cells_identical_serial_parallel_and_cached(self, tmp_path):
        cache = RunCache(tmp_path)
        serial = figure4_sweep(cpus=(2,), utilizations=(0.40, 0.50),
                               max_workers=1, cache=cache)
        parallel = figure4_sweep(cpus=(2,), utilizations=(0.40, 0.50),
                                 max_workers=4)
        assert parallel == serial

        # Warm re-run: every cell must come from the cache, not a sim.
        def exploding_cell(*args, **kwargs):
            raise AssertionError("warm run must not simulate")

        with pytest.MonkeyPatch.context() as patcher:
            patcher.setattr(figure4, "run_cell", exploding_cell)
            warm = figure4_sweep(cpus=(2,), utilizations=(0.40, 0.50),
                                 max_workers=1, cache=cache)
        assert warm == serial
        assert cache.stats()["hits"] == 2
        assert all(cell.real_s > cell.theoretical_s for cell in serial)
