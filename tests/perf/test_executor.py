"""Unit tests for the parallel executor (repro.perf.executor)."""

import pytest

from repro.perf.executor import chunk_indices, default_workers, picklable, pmap

pytestmark = pytest.mark.perf


def square(x):
    return x * x


def boom(x):
    raise ValueError(f"boom on {x}")


class TestChunking:
    def test_chunks_cover_all_indices_in_order(self):
        chunks = chunk_indices(11, 3)
        assert [i for r in chunks for i in r] == list(range(11))
        assert [len(r) for r in chunks] == [3, 3, 3, 2]

    def test_single_chunk(self):
        assert chunk_indices(2, 10) == [range(0, 2)]

    def test_bad_chunksize(self):
        with pytest.raises(ValueError):
            chunk_indices(5, 0)


class TestSerialPaths:
    def test_default_is_serial(self):
        stats = {}
        assert pmap(square, [1, 2, 3], stats=stats) == [1, 4, 9]
        assert stats["mode"] == "serial"

    def test_closure_falls_back(self):
        offset = 5
        stats = {}
        result = pmap(lambda x: x + offset, range(4), max_workers=4, stats=stats)
        assert result == [5, 6, 7, 8]
        assert stats["mode"] == "serial-unpicklable"

    def test_single_item_never_spawns(self):
        stats = {}
        assert pmap(square, [7], max_workers=8, stats=stats) == [49]
        assert stats["mode"] == "serial"

    def test_empty(self):
        assert pmap(square, [], max_workers=4) == []


class TestParallel:
    def test_matches_serial_in_order(self):
        items = list(range(37))
        stats = {}
        result = pmap(square, items, max_workers=2, chunksize=5, stats=stats)
        assert result == [square(x) for x in items]
        assert stats["mode"] == "parallel"
        assert stats["chunks"] == 8

    def test_worker_exception_propagates(self):
        with pytest.raises(ValueError, match="boom"):
            pmap(boom, [1, 2], max_workers=2, chunksize=1)

    def test_zero_means_all_cpus(self):
        # max_workers=0/None resolves to the host CPU count; with two
        # items the pool is clamped to two workers either way.
        assert pmap(square, [2, 3], max_workers=0) == [4, 9]
        assert default_workers() >= 1


class TestPicklable:
    def test_module_function_is(self):
        assert picklable(square)

    def test_lambda_is_not(self):
        assert not picklable(lambda: None)
