"""Figure 4 reproduction: shape checks on a reduced grid.

The full nine-cell sweep lives in the benchmarks; here a subset runs
quickly and the paper's qualitative claims are asserted:

- the theoretical response sits near the standalone execution time
  (around the 10.32 s worst case the paper quotes);
- the prototype is slower than the simulation in every cell;
- the real-vs-theoretical gap grows with periodic utilization.
"""

import pytest

from repro.experiments.figure4 import (
    APERIODIC_STANDALONE_S,
    PAPER_SLOWDOWNS,
    Figure4Cell,
    run_cell,
    slowdown_table,
)

#: One faster arrival phase for test-speed; benchmarks use all three.
FAST = dict(scale=1_000, arrival_phases_s=(1.0,), horizon_margin_s=16.0)


@pytest.fixture(scope="module")
def cells():
    grid = {}
    for n_cpus in (2, 3):
        for util in (0.40, 0.60):
            grid[(n_cpus, util)] = run_cell(n_cpus, util, **FAST)
    return grid


def test_theoretical_near_standalone(cells):
    for cell in cells.values():
        assert cell.theoretical_s == pytest.approx(
            APERIODIC_STANDALONE_S * 1.02, rel=0.02
        )


def test_prototype_always_slower(cells):
    for cell in cells.values():
        assert cell.real_s > cell.theoretical_s


def test_gap_grows_with_utilization(cells):
    for n_cpus in (2, 3):
        low = cells[(n_cpus, 0.40)].slowdown_pct
        high = cells[(n_cpus, 0.60)].slowdown_pct
        assert high > low * 0.9  # monotone up to small noise


def test_slowdowns_in_paper_band(cells):
    """Within a loose band around the paper's 7-27 % range."""
    for cell in cells.values():
        assert 0.0 < cell.slowdown_pct < 45.0


def test_slowdown_table_renders(cells):
    text = slowdown_table(list(cells.values()))
    assert "theoretical" in text
    assert "%" in text


def test_paper_reference_matrix():
    assert PAPER_SLOWDOWNS[(2, 0.40)] == 7.0
    assert PAPER_SLOWDOWNS[(3, 0.60)] == 27.0


def test_cell_math():
    cell = Figure4Cell(n_cpus=2, utilization=0.5, theoretical_s=10.0, real_s=11.0)
    assert cell.slowdown_pct == pytest.approx(10.0)
    assert "2P" in cell.row()
