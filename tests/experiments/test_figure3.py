"""Figure 3 reproduction: the narrative claims must all hold."""

from repro.experiments.figure3 import (
    figure3_taskset,
    narrative_checks_a,
    narrative_checks_b,
    run_schedule_a,
    run_schedule_b,
    schedule_report,
)


def test_taskset_shapes():
    without = figure3_taskset(with_aperiodics=False)
    assert len(without.periodic) == 3
    assert len(without.aperiodic) == 0
    with_a = figure3_taskset(with_aperiodics=True)
    assert [t.name for t in with_a.aperiodic] == ["A1", "A2"]


def test_priorities_follow_paper_bands():
    ts = figure3_taskset(with_aperiodics=True)
    for t in ts.periodic:
        assert t.low_priority in (0, 1)
        assert t.high_priority in (3, 4)


def test_schedule_a_narrative():
    sim, trace = run_schedule_a()
    checks = narrative_checks_a(sim, trace)
    failing = [claim for claim, ok in checks.items() if not ok]
    assert not failing, failing


def test_schedule_b_narrative():
    sim, trace = run_schedule_b()
    checks = narrative_checks_b(sim, trace)
    failing = [claim for claim, ok in checks.items() if not ok]
    assert not failing, failing


def test_schedule_b_job_timeline():
    """Pin the exact idealised schedule (regression guard)."""
    sim, _ = run_schedule_b()
    finish = {j.task.name: j.finish_time for j in sim.finished_jobs}
    assert finish["P1"] == 30_000
    assert finish["P2"] == 40_000
    assert finish["A1"] == 40_000
    assert finish["A2"] == 50_000


def test_reports_render():
    sim, trace = run_schedule_a()
    text = schedule_report("A", sim, trace)
    assert "cpu0" in text and "cpu1" in text and "promotions" in text
