"""Tests for the sweep runner and the paper reference tables."""

import pytest

from repro.experiments.runner import (
    SweepResult,
    processor_scaling_sweep,
    prototype_response_s,
    sweep,
)
from repro.experiments.tables import (
    PAPER_APERIODIC_EXEC_S,
    PAPER_SLOWDOWN_MATRIX,
    format_slowdown_matrix,
    format_task_table,
)
from repro.analysis.promotion import promotion_table
from repro.workloads.automotive import build_automotive_taskset, prepare_taskset


class TestSweep:
    def test_cartesian_product(self):
        calls = []

        def measure(a, b):
            calls.append((a, b))
            return {"sum": a + b}

        result = sweep(measure, {"a": [1, 2], "b": [10, 20]})
        assert calls == [(1, 10), (1, 20), (2, 10), (2, 20)]
        assert result.column("sum") == [11, 21, 12, 22]

    def test_csv_and_format(self):
        result = sweep(lambda x: {"y": x * x}, {"x": [1, 2, 3]})
        csv_text = result.to_csv()
        assert csv_text.splitlines()[0] == "x,y"
        assert "9" in csv_text
        formatted = result.format()
        assert "x" in formatted and "y" in formatted

    def test_empty_sweep(self):
        result = SweepResult(parameters=["x"])
        assert result.to_csv() == ""
        assert "empty" in result.format()

    def test_ragged_rows_csv_uses_key_union(self):
        """Regression: fieldnames must be the union over all rows, not
        row 0's keys -- ragged sweeps used to raise ValueError in
        DictWriter."""
        result = SweepResult(parameters=["x"])
        result.rows = [
            {"x": 1, "y": 2},
            {"x": 3, "y": 4, "extra": 5},  # extra column appears late
            {"x": 6},                      # and one row misses y
        ]
        csv_text = result.to_csv()
        lines = csv_text.splitlines()
        assert lines[0] == "x,y,extra"
        assert lines[1] == "1,2,"
        assert lines[2] == "3,4,5"
        assert lines[3] == "6,,"
        formatted = result.format()
        assert "extra" in formatted

    def test_parallel_sweep_matches_serial(self):
        grid = {"a": [1, 2], "b": [3, 4]}

        def measure(a, b):
            return {"sum": a + b}

        # Closure measure: the parallel request falls back serially but
        # must still produce identical rows.
        serial = sweep(measure, grid, max_workers=1)
        parallel = sweep(measure, grid, max_workers=4)
        assert parallel.rows == serial.rows


class TestPrototypeMeasurement:
    def test_single_point_sane(self):
        row = prototype_response_s(n_cpus=2, utilization=0.4, horizon_margin_s=14.0)
        assert row["misses"] == 0
        assert row["response_s"] > PAPER_APERIODIC_EXEC_S
        assert 0.0 < row["bus_utilization"] < 1.0

    def test_processor_scaling_sweep_shape(self):
        result = processor_scaling_sweep(cpus=(2, 3), utilization=0.4)
        responses = result.column("response_s")
        assert len(responses) == 2
        assert all(r > PAPER_APERIODIC_EXEC_S for r in responses)


class TestTables:
    def test_paper_constants(self):
        assert PAPER_SLOWDOWN_MATRIX[(3, 0.50)] == 22.0
        assert PAPER_APERIODIC_EXEC_S == 10.1

    def test_format_task_table(self):
        ts = prepare_taskset(build_automotive_taskset(0.5, 2), 2, tick=5_000_000)
        rows = promotion_table(ts, 2)
        text = format_task_table(rows)
        assert "task" in text
        assert "susan" not in text  # aperiodic not in the periodic table
        assert "qsort-qsort-large" in text

    def test_format_slowdown_matrix(self):
        measured = {(2, 0.40): 5.0, (3, 0.60): 19.0}
        text = format_slowdown_matrix(measured)
        assert "5.0 (7)" in text
        assert "19.0 (27)" in text
