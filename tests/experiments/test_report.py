"""Tests for the report generator."""

from repro.experiments.report import build_report, main


def test_quick_report_contains_sections():
    text = build_report(quick=True)
    assert "# Reproduction report" in text
    assert "Figure 3" in text
    assert "Figure 4" in text
    assert "Offline analysis" in text
    assert "PASS" in text
    assert "FAIL" not in text
    assert "Verdict: prototype slower than simulation in every" in text


def test_main_writes_file(tmp_path, capsys):
    out = tmp_path / "report.md"
    assert main([str(out), "--quick"]) == 0
    assert out.read_text().startswith("# Reproduction report")


def test_main_stdout(capsys):
    assert main(["-", "--quick"]) == 0
    assert "# Reproduction report" in capsys.readouterr().out
