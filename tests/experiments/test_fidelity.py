"""Fidelity-ladder threading: selector, cache keys, sweep columns.

Guards the invariant that runs of *different* simulation rungs can
never alias each other in the run cache, and that mixed-fidelity
sweeps stay legible (fidelity and wall-time columns survive the CSV
round trip).
"""

import csv
import io

import pytest

from repro import TICK
from repro.experiments.figure4 import _cell_key
from repro.experiments.runner import (
    SweepResult,
    fault_campaign,
    prototype_response_s,
    sweep,
)
from repro.perf.cache import cache_key
from repro.simulators import (
    FIDELITIES,
    PrototypeConfig,
    PrototypeSimulator,
    TheoreticalSimulator,
    TLMSimulator,
    make_simulator,
)
from repro.workloads.automotive import build_automotive_taskset, prepare_taskset


def _taskset(n_cpus=2, utilization=0.40):
    return prepare_taskset(
        build_automotive_taskset(utilization, n_cpus), n_cpus, tick=TICK
    )


class TestCacheKeys:
    def test_figure4_cells_distinct_per_fidelity(self):
        """Regression: a TLM figure-4 cell must never alias the
        prototype result for the same (n_cpus, utilization, scale)."""
        keys = {_cell_key(2, 0.40, 1_000, fidelity) for fidelity in FIDELITIES}
        assert len(keys) == len(FIDELITIES)

    def test_sweep_keys_distinct_per_fidelity(self):
        point = {"n_cpus": 2, "utilization": 0.40}
        keys = {
            cache_key(kind="sweep", tag="t", point=dict(point, fidelity=f))
            for f in FIDELITIES
        }
        assert len(keys) == len(FIDELITIES)

    def test_version_partitions_keys(self, monkeypatch):
        """Pre-ladder cache entries are invalidated by the version
        bump: the package version is part of every key."""
        key_now = cache_key(kind="sweep", tag="t", point={"x": 1})
        monkeypatch.setattr("repro.perf.cache.__version__", "1.1.0")
        key_old = cache_key(kind="sweep", tag="t", point={"x": 1})
        assert key_now != key_old


class TestSweepFidelityColumns:
    @staticmethod
    def _measure(x, fidelity):
        return {"y": x * 10}

    def test_fidelity_is_a_parameter_column(self):
        result = sweep(self._measure, {"x": [1, 2]}, fidelity="tlm")
        assert result.parameters == ["x", "fidelity"]
        assert result.column("fidelity") == ["tlm", "tlm"]
        assert "fidelity" in result.format().splitlines()[0]

    def test_wall_time_column(self):
        result = sweep(self._measure, {"x": [1]}, fidelity="tlm",
                       record_timing=True)
        assert result.rows[0]["wall_time_s"] >= 0.0

    def test_csv_round_trip(self):
        result = sweep(self._measure, {"x": [1, 2]}, fidelity="theoretical",
                       record_timing=True)
        parsed = list(csv.DictReader(io.StringIO(result.to_csv())))
        assert len(parsed) == len(result.rows)
        for row, original in zip(parsed, result.rows):
            assert row["fidelity"] == original["fidelity"]
            assert int(row["x"]) == original["x"]
            assert int(row["y"]) == original["y"]
            assert float(row["wall_time_s"]) == original["wall_time_s"]

    def test_unknown_fidelity_rejected(self):
        with pytest.raises(ValueError, match="fidelity"):
            sweep(self._measure, {"x": [1]}, fidelity="rtl")

    def test_fidelity_grid_conflict_rejected(self):
        with pytest.raises(ValueError, match="not both"):
            sweep(self._measure, {"fidelity": ["tlm"]}, fidelity="tlm")

    def test_no_fidelity_keeps_legacy_shape(self):
        result = sweep(lambda x: {"y": x}, {"x": [3]})
        assert result.parameters == ["x"]
        assert "fidelity" not in result.rows[0]
        assert "wall_time_s" not in result.rows[0]


class TestMeasureDispatch:
    def test_tlm_and_theoretical_rungs(self):
        rows = {
            f: prototype_response_s(n_cpus=2, utilization=0.40,
                                    horizon_margin_s=14.0, fidelity=f)
            for f in ("theoretical", "tlm")
        }
        for row in rows.values():
            assert row["response_s"] > 0
            assert row["misses"] == 0
        # The TLM rung models contention the theoretical rung ignores.
        assert rows["tlm"]["tlm_transactions"] > 0
        assert rows["tlm"]["response_s"] > rows["theoretical"]["response_s"]

    def test_unknown_fidelity_rejected(self):
        with pytest.raises(ValueError, match="fidelity"):
            prototype_response_s(fidelity="gate-level")

    def test_fault_campaign_requires_prototype(self):
        with pytest.raises(ValueError, match="fault"):
            fault_campaign(n_runs=1, until=100_000, fidelity="tlm")


class TestMakeSimulator:
    def test_dispatch(self):
        taskset = _taskset()
        expected = {
            "theoretical": TheoreticalSimulator,
            "tlm": TLMSimulator,
            "prototype": PrototypeSimulator,
        }
        for fidelity, cls in expected.items():
            config = PrototypeConfig(
                n_cpus=2, tick=TICK,
                scale=1_000 if fidelity == "prototype" else 1,
                fidelity=fidelity,
            )
            assert isinstance(make_simulator(taskset, config), cls)

    def test_config_validates_fidelity(self):
        with pytest.raises(ValueError, match="fidelity"):
            PrototypeConfig(fidelity="spice")

    def test_prototype_rejects_other_rungs(self):
        config = PrototypeConfig(n_cpus=2, tick=TICK, fidelity="tlm")
        with pytest.raises(ValueError, match="prototype"):
            PrototypeSimulator(_taskset(), config)
