"""Queue-implementation invariants: bucket vs reference heap.

These pin the contracts the bucketed timer queue must preserve --
clock composition of ``run(until=...)``, insertion-order ties (also
across the bucket/far-heap boundary), already-triggered condition
children, and same-cycle interrupt-vs-timeout ordering.  Most tests
are parametrized over both implementations; several additionally
require the two to produce identical observable schedules.
"""

import pytest

from repro.sim import Interrupt, Simulator
from repro.sim.engine import BUCKET_HORIZON

QUEUES = ("bucket", "heap")


@pytest.fixture(params=QUEUES)
def sim(request):
    return Simulator(queue=request.param)


def test_unknown_queue_kind_rejected():
    with pytest.raises(ValueError):
        Simulator(queue="fibonacci")


def test_default_queue_is_bucket():
    assert Simulator().queue_kind == Simulator.DEFAULT_QUEUE == "bucket"


# ------------------------------------------------------- run(until) clock
def test_run_until_composes_back_to_back(sim):
    """Consecutive run(until=...) calls behave like one longer run."""
    fired = []
    for delay in (5, 250, 2_500, 10_000):
        sim.schedule(delay, lambda d=delay: fired.append((sim.now, d)))
    sim.run(until=250)
    assert sim.now == 250
    assert fired == [(5, 5), (250, 250)]
    sim.run(until=3_000)
    assert sim.now == 3_000
    sim.run(until=20_000)
    assert fired == [(5, 5), (250, 250), (2_500, 2_500), (10_000, 10_000)]
    assert sim.now == 20_000


def test_run_until_exact_event_time_includes_event(sim):
    fired = []
    sim.schedule(100, lambda: fired.append(sim.now))
    sim.run(until=100)
    assert fired == [100]
    assert sim.now == 100


def test_run_until_idle_gap_fast_forwards(sim):
    """An empty stretch costs nothing and leaves the clock at until."""
    sim.run(until=7 * BUCKET_HORIZON)
    assert sim.now == 7 * BUCKET_HORIZON
    assert sim.pending_count == 0


def test_schedule_after_fast_forward(sim):
    """New events schedule correctly after the clock jumped far ahead."""
    fired = []
    sim.run(until=5 * BUCKET_HORIZON + 3)
    sim.schedule(2, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [5 * BUCKET_HORIZON + 5]


def test_next_event_time_reports_earliest(sim):
    assert sim.next_event_time() is None
    sim.schedule(3 * BUCKET_HORIZON, lambda: None)  # far
    assert sim.next_event_time() == 3 * BUCKET_HORIZON
    sim.schedule(9, lambda: None)  # near
    assert sim.next_event_time() == 9
    sim.run()
    assert sim.next_event_time() is None


def test_stop_then_resume_preserves_remaining_events(sim):
    fired = []
    sim.schedule(1, lambda: (fired.append(1), sim.stop()))
    sim.schedule(2_000, lambda: fired.append(2))
    sim.run()  # halts at the stop() without touching later entries
    assert fired == [1]
    assert sim.now == 1
    sim.run(until=10_000)
    assert fired == [1, 2]
    assert sim.now == 10_000


# -------------------------------------------------------------- tie order
def test_ties_across_bucket_far_boundary_preserve_insertion_order():
    """Entries pushed far (heap) and near (bucket) landing on the same
    cycle must still run in global insertion order -- on both queues."""

    def trace(kind):
        sim = Simulator(queue=kind)
        order = []
        target = BUCKET_HORIZON + 50
        # Pushed while target is beyond the horizon: far heap.
        sim.schedule(target, lambda: order.append("far-1"))
        sim.schedule(target, lambda: order.append("far-2"))

        def late_pushes():
            # Runs inside the horizon: bucket path, same instant.
            sim.schedule_at(target, lambda: order.append("near-1"))
            sim.schedule_at(target, lambda: order.append("near-2"))

        sim.schedule(target - 10, late_pushes)
        sim.run()
        return order

    expected = ["far-1", "far-2", "near-1", "near-2"]
    assert trace("bucket") == expected
    assert trace("heap") == expected


def test_same_cycle_interrupt_vs_timeout_tie_ordering():
    """A timeout expiring at the same cycle an interrupt is delivered:
    queue insertion order decides, identically on both queues.

    The timeout's queue entry is pushed at schedule time (t=0), the
    interrupt's deliver callback at t=10 -- so the timeout entry is
    older and the process completes the wait before the (now-dropped)
    interrupt can land.
    """

    def trace(kind):
        sim = Simulator(queue=kind)
        log = []

        def worker():
            while True:
                try:
                    yield sim.timeout(10)
                    log.append((sim.now, "tick"))
                    if sim.now >= 20:
                        return
                except Interrupt as interrupt:
                    log.append((sim.now, interrupt.cause))

        proc = sim.process(worker())
        sim.schedule(10, lambda: proc.interrupt("same-cycle"))
        sim.run()
        return log

    assert trace("bucket") == trace("heap")
    # The t=10 tick precedes the interrupt: its entry was pushed first.
    assert trace("bucket")[0] == (10, "tick")
    assert (10, "same-cycle") in trace("bucket")


def test_interrupt_delivered_before_later_timeout_entry():
    """Flip of the above: interrupt pushed before the timeout entry at
    the same cycle wins on both queues."""

    def trace(kind):
        sim = Simulator(queue=kind)
        log = []

        def worker():
            try:
                yield sim.timeout(30)
                log.append((sim.now, "tick"))
            except Interrupt as interrupt:
                log.append((sim.now, interrupt.cause))

        proc = sim.process(worker())

        def schedule_pair():
            # At t=5: interrupt entry pushed first, then a same-cycle
            # callback; the interrupt must land first.
            proc.interrupt("first")
            log.append((sim.now, "callback"))

        sim.schedule(5, schedule_pair)
        sim.run()
        return log

    assert trace("bucket") == trace("heap") == [
        (5, "callback"), (5, "first")
    ]


def test_many_same_cycle_entries_fifo_within_bucket(sim):
    order = []
    for i in range(200):
        sim.schedule(17, lambda i=i: order.append(i))
    sim.run()
    assert order == list(range(200))


# ------------------------------------------------- condition events
def test_any_of_with_already_triggered_child(sim):
    log = []
    done = sim.event()
    done.succeed("early")

    def worker():
        result = yield sim.any_of([done, sim.timeout(50)])
        log.append((sim.now, result[done]))

    sim.process(worker())
    sim.run()
    assert log == [(0, "early")]


def test_all_of_with_already_triggered_children(sim):
    log = []
    first, second = sim.event(), sim.event()
    first.succeed(1)
    second.succeed(2)

    def worker():
        result = yield sim.all_of([first, second, sim.timeout(5)])
        log.append((sim.now, sorted(result.values(), key=str)))

    sim.process(worker())
    sim.run()
    assert log == [(5, [1, 2, None])]


def test_all_of_mixed_triggered_and_failed_child(sim):
    caught = []
    done = sim.event()
    done.succeed()
    failing = sim.event()

    def worker():
        try:
            yield sim.all_of([done, failing])
        except ValueError as exc:
            caught.append(str(exc))

    sim.process(worker())
    sim.schedule(3, lambda: failing.fail(ValueError("child failed")))
    sim.run()
    assert caught == ["child failed"]


def test_any_of_empty_is_immediately_satisfied(sim):
    log = []

    def worker():
        yield sim.any_of([])
        log.append(sim.now)

    sim.process(worker())
    sim.run()
    assert log == [0]


# ----------------------------------------------- cross-queue equivalence
def test_bucket_and_heap_schedules_identical_under_churn():
    def run_once(kind):
        sim = Simulator(queue=kind)
        log = []

        def worker(tag, period):
            while True:
                try:
                    yield sim.timeout(period)
                    log.append((sim.now, tag, "tick"))
                except Interrupt:
                    log.append((sim.now, tag, "irq"))

        victims = [
            sim.process(worker(t, 2 + i * 3))
            for i, t in enumerate("abcd")
        ]

        def hammer():
            while True:
                yield sim.timeout(BUCKET_HORIZON + 13)  # far-heap period
                for victim in victims:
                    if victim.is_alive:
                        victim.interrupt("far")

        sim.process(hammer())
        sim.run(until=10 * BUCKET_HORIZON)
        return log

    bucket, heap = run_once("bucket"), run_once("heap")
    assert bucket == heap
    assert len(bucket) > 1_000


def test_pending_count_tracks_both_tiers():
    sim = Simulator(queue="bucket")
    sim.schedule(5, lambda: None)
    sim.schedule(2 * BUCKET_HORIZON, lambda: None)
    assert sim.pending_count == 2
    sim.run()
    assert sim.pending_count == 0
