"""Unit tests for Resource / PriorityResource / Store."""

import pytest

from repro.sim import PriorityResource, Resource, Simulator, Store


def test_resource_grants_immediately_when_free():
    sim = Simulator()
    res = Resource(sim)
    req = res.request()
    sim.run()
    assert req.triggered
    assert res.busy


def test_resource_fifo_order():
    sim = Simulator()
    res = Resource(sim)
    order = []

    def user(tag, hold):
        req = res.request()
        yield req
        order.append((tag, sim.now))
        yield sim.timeout(hold)
        res.release(req)

    sim.process(user("a", 5))
    sim.process(user("b", 5))
    sim.process(user("c", 5))
    sim.run()
    assert order == [("a", 0), ("b", 5), ("c", 10)]


def test_resource_capacity_two():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    order = []

    def user(tag):
        req = res.request()
        yield req
        order.append((tag, sim.now))
        yield sim.timeout(10)
        res.release(req)

    for tag in "abc":
        sim.process(user(tag))
    sim.run()
    assert order == [("a", 0), ("b", 0), ("c", 10)]


def test_resource_invalid_capacity():
    with pytest.raises(ValueError):
        Resource(Simulator(), capacity=0)


def test_release_unknown_request_raises():
    sim = Simulator()
    res = Resource(sim)
    other = Resource(sim)
    req = other.request()
    with pytest.raises(RuntimeError):
        res.release(req)


def test_release_waiting_request_cancels_it():
    sim = Simulator()
    res = Resource(sim)
    first = res.request()
    second = res.request()
    assert res.queue_length == 1
    res.release(second)  # cancel before grant
    assert res.queue_length == 0
    res.release(first)
    assert not res.busy


def test_priority_resource_orders_by_priority():
    sim = Simulator()
    res = PriorityResource(sim)
    order = []

    def user(tag, priority):
        req = res.request(priority=priority)
        yield req
        order.append(tag)
        yield sim.timeout(1)
        res.release(req)

    def spawn_all():
        hold = res.request(priority=-10)
        yield hold
        sim.process(user("low", 5))
        sim.process(user("high", 1))
        sim.process(user("mid", 3))
        yield sim.timeout(1)
        res.release(hold)

    sim.process(spawn_all())
    sim.run()
    assert order == ["high", "mid", "low"]


def test_priority_resource_fifo_among_equals():
    sim = Simulator()
    res = PriorityResource(sim)
    order = []

    def user(tag):
        req = res.request(priority=1)
        yield req
        order.append(tag)
        yield sim.timeout(1)
        res.release(req)

    def spawn():
        hold = res.request(priority=0)
        yield hold
        for tag in "abc":
            sim.process(user(tag))
        yield sim.timeout(1)
        res.release(hold)

    sim.process(spawn())
    sim.run()
    assert order == ["a", "b", "c"]


def test_priority_resource_cancel_waiting():
    sim = Simulator()
    res = PriorityResource(sim)
    first = res.request(priority=0)
    second = res.request(priority=1)
    res.release(second)
    assert res.queue_length == 0
    res.release(first)


def test_resource_wait_accounting():
    sim = Simulator()
    res = Resource(sim)

    def user(hold):
        req = res.request()
        yield req
        yield sim.timeout(hold)
        res.release(req)

    sim.process(user(10))
    sim.process(user(10))
    sim.run()
    assert res.grant_count == 2
    assert res.wait_cycles_total == 10


def test_store_put_then_get():
    sim = Simulator()
    store = Store(sim)
    store.put("x")
    got = store.get()
    assert got.triggered
    assert got.value == "x"
    assert len(store) == 0


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    values = []

    def consumer():
        item = yield store.get()
        values.append((sim.now, item))

    sim.process(consumer())
    sim.schedule(7, lambda: store.put("late"))
    sim.run()
    assert values == [(7, "late")]


def test_store_fifo_order():
    sim = Simulator()
    store = Store(sim)
    store.put(1)
    store.put(2)
    assert store.get().value == 1
    assert store.get().value == 2
