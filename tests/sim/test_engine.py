"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim import Event, Interrupt, Simulator, Timeout


def test_empty_run_leaves_clock_at_until():
    sim = Simulator()
    sim.run(until=100)
    assert sim.now == 100


def test_run_without_until_drains_queue():
    sim = Simulator()
    fired = []
    sim.schedule(5, lambda: fired.append(sim.now))
    sim.schedule(2, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [2, 5]


def test_schedule_at_absolute_time():
    sim = Simulator()
    fired = []
    sim.schedule_at(42, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [42]


def test_schedule_in_past_rejected():
    sim = Simulator()
    sim.run(until=10)
    with pytest.raises(ValueError):
        sim.schedule_at(5, lambda: None)


def test_ties_break_in_insertion_order():
    sim = Simulator()
    order = []
    for tag in ("a", "b", "c"):
        sim.schedule(7, lambda t=tag: order.append(t))
    sim.run()
    assert order == ["a", "b", "c"]


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(10, lambda: fired.append("early"))
    sim.schedule(100, lambda: fired.append("late"))
    sim.run(until=50)
    assert fired == ["early"]
    assert sim.now == 50
    sim.run(until=200)
    assert fired == ["early", "late"]


def test_event_succeed_runs_callbacks():
    sim = Simulator()
    event = sim.event()
    got = []
    event.callbacks.append(lambda e: got.append(e.value))
    event.succeed(99)
    sim.run()
    assert got == [99]


def test_event_cannot_trigger_twice():
    sim = Simulator()
    event = sim.event()
    event.succeed()
    with pytest.raises(RuntimeError):
        event.succeed()


def test_event_value_before_trigger_raises():
    sim = Simulator()
    event = sim.event()
    with pytest.raises(RuntimeError):
        _ = event.value


def test_event_fail_requires_exception():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.event().fail("not an exception")


def test_timeout_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        Timeout(sim, -1)


def test_process_advances_through_timeouts():
    sim = Simulator()
    log = []

    def worker():
        yield sim.timeout(3)
        log.append(sim.now)
        yield sim.timeout(4)
        log.append(sim.now)

    sim.process(worker())
    sim.run()
    assert log == [3, 7]


def test_process_requires_generator():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.process(lambda: None)


def test_process_return_value_becomes_event_value():
    sim = Simulator()

    def worker():
        yield sim.timeout(1)
        return "done"

    proc = sim.process(worker())
    sim.run()
    assert proc.triggered
    assert proc.value == "done"


def test_process_can_wait_on_process():
    sim = Simulator()
    log = []

    def child():
        yield sim.timeout(5)
        return 21

    def parent():
        value = yield sim.process(child())
        log.append((sim.now, value))

    sim.process(parent())
    sim.run()
    assert log == [(5, 21)]


def test_yielding_non_event_raises():
    sim = Simulator()

    def bad():
        yield 42

    sim.process(bad())
    with pytest.raises(TypeError):
        sim.run()


def test_interrupt_lands_in_waiting_process():
    sim = Simulator()
    log = []

    def worker():
        try:
            yield sim.timeout(100)
        except Interrupt as interrupt:
            log.append((sim.now, interrupt.cause))

    proc = sim.process(worker())
    sim.schedule(10, lambda: proc.interrupt("stop"))
    sim.run()
    assert log == [(10, "stop")]


def test_interrupt_guard_false_drops_interrupt():
    sim = Simulator()
    log = []

    def worker():
        try:
            yield sim.timeout(20)
            log.append("completed")
        except Interrupt:
            log.append("interrupted")

    proc = sim.process(worker())
    sim.schedule(10, lambda: proc.interrupt("x", guard=lambda: False))
    sim.run()
    assert log == ["completed"]


def test_interrupt_finished_process_raises():
    sim = Simulator()

    def worker():
        yield sim.timeout(1)

    proc = sim.process(worker())
    sim.run()
    with pytest.raises(RuntimeError):
        proc.interrupt()


def test_interrupted_timeout_does_not_resume_later():
    """After an interrupt, the abandoned timeout must not re-wake."""
    sim = Simulator()
    wakes = []

    def worker():
        try:
            yield sim.timeout(50)
            wakes.append("timeout")
        except Interrupt:
            yield sim.timeout(100)
            wakes.append("after-interrupt")

    proc = sim.process(worker())
    sim.schedule(10, lambda: proc.interrupt())
    sim.run()
    assert wakes == ["after-interrupt"]
    assert sim.now == 110


def test_any_of_fires_on_first():
    sim = Simulator()
    log = []

    def worker():
        yield sim.any_of([sim.timeout(10), sim.timeout(3)])
        log.append(sim.now)

    sim.process(worker())
    sim.run()
    assert log == [3]


def test_all_of_waits_for_every_event():
    sim = Simulator()
    log = []

    def worker():
        yield sim.all_of([sim.timeout(10), sim.timeout(3)])
        log.append(sim.now)

    sim.process(worker())
    sim.run()
    assert log == [10]


def test_stop_halts_loop():
    sim = Simulator()
    fired = []
    sim.schedule(1, lambda: (fired.append(1), sim.stop()))
    sim.schedule(2, lambda: fired.append(2))
    sim.run()
    assert fired == [1]
    sim.run()
    assert fired == [1, 2]


def test_process_failure_propagates_to_waiter():
    sim = Simulator()
    caught = []

    def child():
        yield sim.timeout(1)
        raise ValueError("boom")

    def parent():
        try:
            yield sim.process(child())
        except ValueError as exc:
            caught.append(str(exc))

    sim.process(parent())
    sim.run()
    assert caught == ["boom"]


def test_unwaited_process_failure_raises_out_of_run():
    sim = Simulator()

    def child():
        yield sim.timeout(1)
        raise ValueError("unhandled")

    sim.process(child())
    with pytest.raises(ValueError):
        sim.run()


def test_heavy_interrupt_churn_detaches_correctly():
    """Tombstone detach: repeated interrupts must not corrupt the
    abandoned events' callback lists or re-wake the process."""
    sim = Simulator()
    log = []

    def worker():
        while True:
            try:
                yield sim.timeout(50)
                log.append((sim.now, "tick"))
                return
            except Interrupt as interrupt:
                log.append((sim.now, interrupt.cause))

    proc = sim.process(worker())
    for i in range(1, 11):
        sim.schedule(i * 3, lambda i=i: proc.interrupt(i) if proc.is_alive else None)
    sim.run()
    assert log == [(i * 3, i) for i in range(1, 11)] + [(80, "tick")]


def test_interrupt_churn_deterministic_across_runs():
    def run_once():
        sim = Simulator()
        log = []

        def worker(tag):
            for _ in range(5):
                try:
                    yield sim.timeout(10)
                    log.append((sim.now, tag, "tick"))
                except Interrupt:
                    log.append((sim.now, tag, "irq"))

        victims = [sim.process(worker(t)) for t in "abc"]

        def hammer():
            while any(v.is_alive for v in victims):
                yield sim.timeout(7)
                for victim in victims:
                    if victim.is_alive:
                        victim.interrupt()

        sim.process(hammer())
        sim.run(until=1_000)
        return log

    assert run_once() == run_once()


def test_events_have_no_instance_dict():
    """Event/Timeout/Process are slotted; allocation-heavy runs rely
    on it."""
    sim = Simulator()

    def worker():
        yield sim.timeout(1)

    proc = sim.process(worker())
    for obj in (sim.event(), sim.timeout(5), proc):
        assert not hasattr(obj, "__dict__"), type(obj).__name__
    sim.run()


def test_interrupt_then_wait_on_processed_event():
    """The direct-push wake path for already-processed targets."""
    sim = Simulator()
    log = []
    done = sim.event()
    done.succeed("ready")

    def worker():
        try:
            yield sim.timeout(100)
        except Interrupt:
            value = yield done  # already processed: wake via queue push
            log.append((sim.now, value))

    proc = sim.process(worker())
    sim.schedule(10, lambda: proc.interrupt())
    sim.run()
    assert log == [(10, "ready")]
