"""The tutorial's code blocks must run exactly as written."""

import io
import re
from contextlib import redirect_stdout
from pathlib import Path

TUTORIAL = Path(__file__).resolve().parent.parent / "docs" / "TUTORIAL.md"


def test_tutorial_code_blocks_execute():
    source = TUTORIAL.read_text()
    blocks = re.findall(r"```python\n(.*?)```", source, re.S)
    assert len(blocks) >= 5
    code = "\n".join(blocks)
    namespace = {}
    with redirect_stdout(io.StringIO()) as captured:
        exec(compile(code, str(TUTORIAL), "exec"), namespace)
    output = captured.getvalue()
    assert "schedulable: True" in output
    assert "misses: theoretical=0 prototype=0" in output
