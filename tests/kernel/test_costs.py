"""Tests for the kernel cost model."""

import pytest

from repro.kernel.costs import KernelCosts


def test_scheduler_cycle_linear_in_jobs():
    costs = KernelCosts(scheduler_base=400, scheduler_per_job=60)
    assert costs.scheduler_cycle(0) == 400
    assert costs.scheduler_cycle(5) == 700
    assert costs.scheduler_cycle(-3) == 400  # clamped


def test_scaled_divides_with_floor_one():
    costs = KernelCosts()
    scaled = costs.scaled(1000)
    assert scaled.irq_entry == max(1, costs.irq_entry // 1000)
    assert scaled.scheduler_base >= 1
    assert scaled.regfile_words >= 1
    assert scaled.context_primitive >= 1


def test_scale_one_returns_self():
    costs = KernelCosts()
    assert costs.scaled(1) is costs


def test_scale_preserves_ratios_roughly():
    costs = KernelCosts(scheduler_base=4000, irq_entry=800)
    scaled = costs.scaled(10)
    assert scaled.scheduler_base == 400
    assert scaled.irq_entry == 80


def test_invalid_scale():
    with pytest.raises(ValueError):
        KernelCosts().scaled(0)
