"""Integration tests: the microkernel on the full SoC model."""

import pytest

from repro.analysis import assign_promotions, partition, random_taskset
from repro.core.task import AperiodicTask, PeriodicTask, TaskSet
from repro.hw.soc import SoC, SoCConfig
from repro.kernel import DualPriorityMicrokernel, TaskBinding
from repro.trace import TraceRecorder, compute_metrics

TICK = 20_000


def build(tasks, aperiodic=(), n_cpus=2, tick=TICK, bindings=None):
    ts = TaskSet(tasks, aperiodic).with_deadline_monotonic_priorities()
    ts = partition(ts, n_cpus)
    ts = assign_promotions(ts, n_cpus, tick=tick)
    soc = SoC(SoCConfig(n_cpus=n_cpus, tick_cycles=tick, chunk_cycles=1_000))
    trace = TraceRecorder()
    kernel = DualPriorityMicrokernel(soc, ts, bindings=bindings, trace=trace)
    return soc, kernel, trace


def ptask(name, wcet, period, deadline=None):
    return PeriodicTask(name=name, wcet=wcet, period=period, deadline=deadline)


class TestPeriodicExecution:
    def test_single_task_meets_every_deadline(self):
        soc, kernel, trace = build([ptask("a", 5_000, 100_000)])
        kernel.run(until=1_000_000)
        finished = kernel.finished_jobs
        assert len(finished) == 10
        assert not any(j.missed_deadline for j in finished)

    def test_full_load_two_cpus_no_misses(self):
        tasks = [
            ptask("a", 8_000, 80_000),
            ptask("b", 12_000, 120_000),
            ptask("c", 6_000, 60_000),
            ptask("d", 10_000, 100_000),
        ]
        soc, kernel, trace = build(tasks)
        kernel.run(until=1_200_000)
        metrics = compute_metrics(kernel.finished_jobs, 1_200_000, trace)
        assert metrics.finished_jobs >= 40
        assert metrics.deadline_misses == 0
        kernel.policy.check_invariants()

    def test_scheduling_cycles_follow_timer(self):
        soc, kernel, trace = build([ptask("a", 1_000, 200_000)])
        kernel.run(until=400_000)
        # 0.4 M cycles / 20 k tick = 20 ticks (first at t=0).
        assert 18 <= kernel.scheduling_cycles <= 21

    def test_promotions_recorded_under_pressure(self):
        # Tight deadline forces promotion through the tick-rounded U.
        tasks = [
            ptask("tight", 15_000, 100_000, deadline=40_000),
            ptask("bulk", 30_000, 100_000),
        ]
        soc, kernel, trace = build(tasks, n_cpus=1)
        kernel.run(until=500_000)
        assert not any(j.missed_deadline for j in kernel.finished_jobs)


class TestAperiodicPath:
    def test_interrupt_releases_aperiodic(self):
        aper = AperiodicTask(name="evt", wcet=10_000)
        soc, kernel, trace = build([ptask("a", 5_000, 100_000)], aperiodic=[aper])
        soc.add_can_interface("can0", task_name="evt")
        soc.peripherals["can0"].program_frames([150_000])
        kernel.run(until=400_000)
        evt_jobs = [j for j in kernel.finished_jobs if j.task.name == "evt"]
        assert len(evt_jobs) == 1
        job = evt_jobs[0]
        assert job.release >= 150_000
        assert job.response_time < 50_000
        assert kernel.aperiodic_releases == 1

    def test_multiple_aperiodic_arrivals_fifo(self):
        aper = AperiodicTask(name="evt", wcet=30_000)
        soc, kernel, trace = build([ptask("a", 5_000, 100_000)], aperiodic=[aper], n_cpus=1)
        soc.add_can_interface("can0", task_name="evt")
        soc.peripherals["can0"].program_frames([100_000, 110_000])
        kernel.run(until=600_000)
        evt_jobs = sorted(
            (j for j in kernel.finished_jobs if j.task.name == "evt"),
            key=lambda j: j.release,
        )
        assert len(evt_jobs) == 2
        assert evt_jobs[0].finish_time <= evt_jobs[1].finish_time

    def test_aperiodic_preempted_by_promoted_periodic(self):
        # Single cpu: periodic with a tight deadline must win mid-flight.
        periodic = ptask("p", 20_000, 100_000, deadline=60_000)
        aper = AperiodicTask(name="evt", wcet=80_000)
        soc, kernel, trace = build([periodic], aperiodic=[aper], n_cpus=1)
        soc.add_can_interface("can0", task_name="evt")
        soc.peripherals["can0"].program_frames([5_000])
        kernel.run(until=800_000)
        assert not any(
            j.missed_deadline for j in kernel.finished_jobs if j.is_periodic
        )
        evt = [j for j in kernel.finished_jobs if j.task.name == "evt"]
        assert evt and evt[0].preemptions >= 1


class TestKernelMechanics:
    def test_context_switches_counted(self):
        soc, kernel, trace = build(
            [ptask("a", 10_000, 60_000), ptask("b", 10_000, 80_000)], n_cpus=1
        )
        kernel.run(until=500_000)
        assert kernel.context_switches > 0
        assert kernel.context_switches == len(trace.of_kind("switch"))

    def test_ipis_sent_for_remote_switches(self):
        tasks = [ptask(f"t{i}", 8_000, 90_000 + 10_000 * i) for i in range(4)]
        soc, kernel, trace = build(tasks, n_cpus=2)
        kernel.run(until=600_000)
        assert kernel.stats()["ipis"] > 0

    def test_bus_traffic_generated(self):
        soc, kernel, trace = build([ptask("a", 20_000, 100_000)])
        kernel.run(until=300_000)
        assert soc.bus.stats.busy_cycles > 0
        assert soc.bus.stats.utilization(soc.sim.now) < 1.0

    def test_kernel_lock_released_after_run(self):
        soc, kernel, trace = build([ptask("a", 5_000, 100_000)])
        kernel.run(until=300_000)
        assert soc.sync_engine.owner(0) is None

    def test_double_start_rejected(self):
        soc, kernel, trace = build([ptask("a", 5_000, 100_000)])
        kernel.start()
        with pytest.raises(RuntimeError):
            kernel.start()

    def test_stats_shape(self):
        soc, kernel, trace = build([ptask("a", 5_000, 100_000)])
        kernel.run(until=100_000)
        stats = kernel.stats()
        for key in (
            "context_switches",
            "scheduling_cycles",
            "irqs_serviced",
            "bus_utilization",
            "mpic_delivered",
        ):
            assert key in stats

    def test_custom_bindings_affect_traffic(self):
        from repro.hw.microblaze import ExecutionProfile

        heavy = {"a": TaskBinding(profile=ExecutionProfile(access_period=30, access_words=4))}
        light = {"a": TaskBinding(profile=ExecutionProfile(access_period=3_000, access_words=4))}
        results = {}
        for label, bindings in (("heavy", heavy), ("light", light)):
            soc, kernel, _ = build([ptask("a", 50_000, 200_000)], bindings=bindings)
            kernel.run(until=400_000)
            results[label] = soc.bus.stats.busy_cycles
        assert results["heavy"] > 4 * results["light"]


class TestRandomWorkloads:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_no_misses_on_schedulable_random_sets(self, seed):
        ts = random_taskset(
            6, 0.9, seed=seed, min_period=60_000, max_period=400_000
        )
        ts = partition(ts, 2)
        ts = assign_promotions(ts, 2, tick=TICK)
        soc = SoC(SoCConfig(n_cpus=2, tick_cycles=TICK, chunk_cycles=1_000))
        kernel = DualPriorityMicrokernel(soc, ts)
        kernel.run(until=2_000_000)
        assert len(kernel.finished_jobs) > 10
        misses = [j for j in kernel.finished_jobs if j.missed_deadline]
        assert misses == []
        kernel.policy.check_invariants()
