"""Kernel trace integration: the prototype's trace renders and adds up."""

import pytest

from repro.analysis import assign_promotions, partition
from repro.core.task import AperiodicTask, PeriodicTask, TaskSet
from repro.hw.monitor import BusMonitor
from repro.hw.soc import SoC, SoCConfig
from repro.kernel import DualPriorityMicrokernel
from repro.trace import TraceRecorder, compute_metrics
from repro.trace.export import trace_to_csv, trace_to_json
from repro.trace.gantt import render_gantt, render_interval_table

TICK = 20_000


@pytest.fixture
def run():
    ts = TaskSet(
        [
            PeriodicTask(name="alpha", wcet=8_000, period=80_000),
            PeriodicTask(name="beta", wcet=12_000, period=120_000),
            PeriodicTask(name="gamma", wcet=6_000, period=60_000),
        ],
        [AperiodicTask(name="event", wcet=9_000)],
    ).with_deadline_monotonic_priorities()
    ts = partition(ts, 2)
    ts = assign_promotions(ts, 2, tick=TICK)
    soc = SoC(SoCConfig(n_cpus=2, tick_cycles=TICK, chunk_cycles=1_000))
    soc.add_can_interface("can0", task_name="event")
    soc.peripherals["can0"].program_frames([130_000])
    trace = TraceRecorder()
    kernel = DualPriorityMicrokernel(soc, ts, trace=trace)
    monitor = BusMonitor(soc.sim, soc.bus, window=TICK)
    monitor.start()
    kernel.run(until=600_000)
    return soc, kernel, trace, monitor


def test_trace_has_complete_lifecycles(run):
    _soc, kernel, trace, _monitor = run
    finishes = {e.job for e in trace.of_kind("finish")}
    for job in kernel.finished_jobs:
        assert job.name in finishes
        dispatches = [e for e in trace.of_job(job.name) if e.kind == "dispatch"]
        assert dispatches, job.name
        assert min(e.time for e in dispatches) <= job.finish_time


def test_gantt_renders_from_kernel_trace(run):
    _soc, _kernel, trace, _monitor = run
    art = render_gantt(trace, horizon=600_000, slot=10_000, n_cpus=2)
    lines = art.splitlines()
    assert lines[0].startswith("cpu0") and lines[1].startswith("cpu1")
    # The workload is light: idle columns must appear.
    assert "." in lines[0] + lines[1]
    table = render_interval_table(trace, horizon=600_000, n_cpus=2)
    assert "alpha" in table


def test_busy_time_consistent_with_metrics(run):
    _soc, kernel, trace, _monitor = run
    metrics = compute_metrics(kernel.finished_jobs, 600_000, trace)
    total_busy = sum(metrics.per_cpu_busy.values())
    total_executed = sum(j.task.acet for j in kernel.finished_jobs)
    # Busy time covers at least the nominal execution of finished jobs.
    assert total_busy >= total_executed * 0.9


def test_trace_exports(run):
    _soc, _kernel, trace, _monitor = run
    assert len(trace_to_json(trace)) > 100
    assert trace_to_csv(trace).startswith("time,kind")


def test_monitor_attached_to_kernel_run(run):
    soc, _kernel, _trace, monitor = run
    assert len(monitor.samples) == 600_000 // TICK
    assert 0.0 < monitor.steady_state_utilization() < 1.0
    # Windowed counters reconcile with the cumulative bus stats.
    assert sum(s.transactions for s in monitor.samples) == soc.bus.stats.transactions
