"""Tests for the context-switch engine."""

import pytest

from repro.hw.bus import OPBBus
from repro.hw.memory import DDRMemory
from repro.hw.microblaze import MicroBlaze
from repro.kernel.context import BURST_WORDS, ContextSwitchEngine, TaskContext
from repro.sim import Simulator


def make_engine(primitive=100, regfile=32):
    sim = Simulator()
    core = MicroBlaze(sim, 0, OPBBus(sim), DDRMemory())
    return sim, core, ContextSwitchEngine(core, primitive_overhead=primitive, regfile_words=regfile)


def test_context_created_once_per_task():
    _, _, engine = make_engine()
    a = engine.context_of("taskA", stack_words=128)
    again = engine.context_of("taskA", stack_words=999)  # size ignored on reuse
    assert a is again
    assert a.stack_words == 128


def test_total_words_includes_regfile():
    ctx = TaskContext("t", stack_words=100, regfile_words=32)
    assert ctx.total_words == 132


def test_save_costs_overhead_plus_bus_bursts():
    sim, core, engine = make_engine(primitive=100, regfile=32)
    ctx = engine.context_of("t", stack_words=32)  # 64 words -> 8 bursts

    def run():
        yield from engine.save(ctx)

    sim.process(run())
    sim.run()
    burst_latency = core.ddr.access_latency(BURST_WORDS)
    assert sim.now == 100 + 8 * burst_latency
    assert ctx.saved
    assert engine.saves == 1
    assert engine.cycles_spent == sim.now


def test_restore_counts():
    sim, core, engine = make_engine()
    ctx = engine.context_of("t", stack_words=8)

    def run():
        yield from engine.restore(ctx)

    sim.process(run())
    sim.run()
    assert engine.restores == 1
    assert ctx.restore_count == 1


def test_switch_save_then_restore():
    sim, core, engine = make_engine()
    old = engine.context_of("old", stack_words=8)
    new = engine.context_of("new", stack_words=8)

    def run():
        yield from engine.switch(old, new)

    sim.process(run())
    sim.run()
    assert engine.saves == 1
    assert engine.restores == 1


def test_switch_with_none_halves():
    sim, core, engine = make_engine()
    new = engine.context_of("new", stack_words=8)

    def run():
        yield from engine.switch(None, new)

    sim.process(run())
    sim.run()
    assert engine.saves == 0
    assert engine.restores == 1


def test_validation():
    sim = Simulator()
    core = MicroBlaze(sim, 0, OPBBus(sim), DDRMemory())
    with pytest.raises(ValueError):
        ContextSwitchEngine(core, primitive_overhead=-1)
    with pytest.raises(ValueError):
        ContextSwitchEngine(core, regfile_words=-1)
