"""Unit tests for the task/job model."""

import pytest

from repro.core.task import (
    AperiodicTask,
    Band,
    Job,
    JobState,
    PeriodicTask,
    TaskSet,
    make_jobs,
)


def make_task(**kwargs):
    base = dict(name="t", wcet=100, period=1000)
    base.update(kwargs)
    return PeriodicTask(**base)


class TestPeriodicTask:
    def test_deadline_defaults_to_period(self):
        assert make_task().deadline == 1000

    def test_acet_defaults_to_wcet(self):
        assert make_task().acet == 100

    def test_acet_above_wcet_rejected(self):
        with pytest.raises(ValueError):
            make_task(acet=101)

    def test_wcet_must_be_positive(self):
        with pytest.raises(ValueError):
            make_task(wcet=0)

    def test_deadline_beyond_period_rejected(self):
        with pytest.raises(ValueError):
            make_task(deadline=1001)

    def test_wcet_beyond_deadline_rejected(self):
        with pytest.raises(ValueError):
            make_task(wcet=600, deadline=500)

    def test_promotion_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            make_task(promotion=1001)

    def test_negative_offset_rejected(self):
        with pytest.raises(ValueError):
            make_task(offset=-1)

    def test_utilization(self):
        assert make_task(wcet=250, period=1000).utilization == 0.25

    def test_with_promotion_preserves_other_fields(self):
        task = make_task(cpu=3, low_priority=7).with_promotion(500)
        assert task.promotion == 500
        assert task.cpu == 3
        assert task.low_priority == 7

    def test_release_times(self):
        task = make_task(period=300, offset=50)
        assert list(task.release_times(1000)) == [50, 350, 650, 950]


class TestAperiodicTask:
    def test_arrivals_must_be_sorted(self):
        with pytest.raises(ValueError):
            AperiodicTask(name="a", wcet=10, arrivals=(5, 3))

    def test_negative_arrival_rejected(self):
        with pytest.raises(ValueError):
            AperiodicTask(name="a", wcet=10, arrivals=(-1,))

    def test_acet_default(self):
        assert AperiodicTask(name="a", wcet=10).acet == 10


class TestJob:
    def test_remaining_uses_acet(self):
        job = Job(make_task(acet=60), release=0)
        assert job.remaining == 60

    def test_band_transitions(self):
        job = Job(make_task(promotion=100), release=0)
        assert job.band is Band.LOWER
        job.promoted = True
        assert job.band is Band.UPPER

    def test_aperiodic_band_is_middle(self):
        job = Job(AperiodicTask(name="a", wcet=10), release=0)
        assert job.band is Band.MIDDLE

    def test_promoted_periodic_beats_aperiodic_beats_unpromoted(self):
        periodic = Job(make_task(promotion=0), release=0)
        aperiodic = Job(AperiodicTask(name="a", wcet=10), release=0)
        assert aperiodic.key() > periodic.key()
        periodic.promoted = True
        assert periodic.key() > aperiodic.key()

    def test_aperiodic_fifo_key(self):
        early = Job(AperiodicTask(name="a", wcet=10, arrivals=()), release=5)
        late = Job(AperiodicTask(name="b", wcet=10, arrivals=()), release=9)
        assert early.key() > late.key()

    def test_promotion_time(self):
        job = Job(make_task(promotion=400), release=100)
        assert job.promotion_time == 500

    def test_promotion_unanalysed_raises(self):
        job = Job(make_task(), release=0)
        with pytest.raises(ValueError):
            _ = job.promotion_time

    def test_response_time_and_deadline_miss(self):
        job = Job(make_task(deadline=500), release=100)
        job.record_finish(700)
        assert job.response_time == 600
        assert job.missed_deadline

    def test_migration_counting(self):
        job = Job(make_task(), release=0)
        job.record_dispatch(0, 0)
        job.record_preemption()
        job.record_dispatch(1, 10)
        job.record_dispatch(1, 20)
        assert job.migrations == 1
        assert job.preemptions == 1
        assert job.start_time == 0


class TestTaskSet:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            TaskSet([make_task(name="x"), make_task(name="x")])

    def test_utilization_sums(self):
        ts = TaskSet([make_task(name="a", wcet=100), make_task(name="b", wcet=300)])
        assert ts.utilization == pytest.approx(0.4)

    def test_hyperperiod(self):
        ts = TaskSet([
            make_task(name="a", period=300, wcet=10),
            make_task(name="b", period=400, wcet=10),
        ])
        assert ts.hyperperiod == 1200

    def test_by_name(self):
        ts = TaskSet([make_task(name="a")], [AperiodicTask(name="z", wcet=1)])
        assert ts.by_name("z").wcet == 1
        with pytest.raises(KeyError):
            ts.by_name("missing")

    def test_deadline_monotonic_priorities(self):
        ts = TaskSet([
            make_task(name="slow", deadline=900),
            make_task(name="fast", deadline=100),
            make_task(name="mid", deadline=500),
        ]).with_deadline_monotonic_priorities()
        prio = {t.name: t.high_priority for t in ts.periodic}
        assert prio["fast"] > prio["mid"] > prio["slow"]

    def test_require_analysed(self):
        ts = TaskSet([make_task()])
        with pytest.raises(ValueError):
            ts.require_analysed()
        ts2 = ts.with_tasks([make_task(promotion=10)])
        ts2.require_analysed()  # no raise

    def test_utilization_per_cpu_validates_range(self):
        ts = TaskSet([make_task(cpu=5)])
        with pytest.raises(ValueError):
            ts.utilization_per_cpu(2)

    def test_scale_clears_promotions(self):
        ts = TaskSet([make_task(promotion=10)]).scale(2.0)
        assert ts.periodic[0].promotion is None
        assert ts.periodic[0].period == 2000

    def test_on_cpu(self):
        ts = TaskSet([make_task(name="a", cpu=0), make_task(name="b", cpu=1)])
        assert [t.name for t in ts.on_cpu(1)] == ["b"]

    def test_summary_contains_tasks(self):
        ts = TaskSet([make_task(name="abc")], [AperiodicTask(name="xyz", wcet=5)])
        text = ts.summary()
        assert "abc" in text and "xyz" in text


def test_make_jobs():
    jobs = make_jobs(make_task(period=250, promotion=0), until=1000)
    assert [j.release for j in jobs] == [0, 250, 500, 750]
    assert [j.index for j in jobs] == [0, 1, 2, 3]
    assert all(j.state is JobState.WAITING for j in jobs)
