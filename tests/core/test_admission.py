"""Tests for the aperiodic admission controller."""

import pytest

from repro.core.admission import AperiodicAdmissionController
from repro.core.mpdp import MPDPScheduler
from repro.core.task import AperiodicTask, Job, PeriodicTask, TaskSet


def scheduler(periodic=(), n_cpus=2):
    return MPDPScheduler(TaskSet(list(periodic)), n_cpus)


def ptask(name, wcet, period, cpu=0, promotion=None):
    if promotion is None:
        promotion = period - wcet
    return PeriodicTask(name=name, wcet=wcet, period=period, cpu=cpu, promotion=promotion)


def aperiodic_job(wcet=100, release=0, soft_deadline=None, name="a"):
    return Job(AperiodicTask(name=name, wcet=wcet, soft_deadline=soft_deadline), release=release)


class TestEstimation:
    def test_idle_system_estimate_near_wcet(self):
        controller = AperiodicAdmissionController(scheduler())
        # No periodic tasks: the estimate is exactly the work / capacity.
        assert controller.estimate_response(now=0, wcet=1_000) >= 500
        assert controller.estimate_response(now=0, wcet=1_000) <= 1_000

    def test_backlog_increases_estimate(self):
        sched = scheduler()
        controller = AperiodicAdmissionController(sched)
        empty = controller.estimate_response(0, 1_000)
        sched.add_aperiodic(aperiodic_job(wcet=5_000, name="queued"))
        loaded = controller.estimate_response(0, 1_000)
        assert loaded > empty

    def test_promoted_interference_increases_estimate(self):
        light = AperiodicAdmissionController(scheduler())
        heavy_sched = scheduler([ptask("p", 5_000, 10_000)])
        heavy = AperiodicAdmissionController(heavy_sched)
        assert heavy.estimate_response(0, 10_000) > light.estimate_response(0, 10_000)

    def test_estimate_validates_wcet(self):
        controller = AperiodicAdmissionController(scheduler())
        with pytest.raises(ValueError):
            controller.estimate_response(0, 0)

    def test_estimate_is_monotone_in_wcet(self):
        sched = scheduler([ptask("p", 1_000, 10_000)])
        controller = AperiodicAdmissionController(sched)
        small = controller.estimate_response(0, 1_000)
        large = controller.estimate_response(0, 50_000)
        assert large > small


class TestAdmission:
    def test_no_deadline_always_admitted(self):
        controller = AperiodicAdmissionController(scheduler())
        verdict = controller.admit(aperiodic_job(), now=0)
        assert verdict.admitted
        assert verdict.soft_deadline is None

    def test_generous_deadline_admitted(self):
        controller = AperiodicAdmissionController(scheduler())
        verdict = controller.admit(aperiodic_job(wcet=100), now=0, soft_deadline=1_000_000)
        assert verdict.admitted
        assert verdict.estimated_finish <= 1_000_000

    def test_impossible_deadline_rejected(self):
        controller = AperiodicAdmissionController(scheduler())
        verdict = controller.admit(aperiodic_job(wcet=10_000), now=0, soft_deadline=10)
        assert not verdict.admitted

    def test_task_soft_deadline_used(self):
        controller = AperiodicAdmissionController(scheduler())
        job = aperiodic_job(wcet=10_000, soft_deadline=10)
        verdict = controller.admit(job, now=0)
        assert verdict.soft_deadline == 10
        assert not verdict.admitted

    def test_periodic_job_rejected_by_type(self):
        controller = AperiodicAdmissionController(scheduler())
        job = Job(ptask("p", 100, 1_000), release=0)
        with pytest.raises(TypeError):
            controller.admit(job, now=0)

    def test_admit_estimate_is_safe_upper_bound(self):
        """Simulated response must not exceed the admission estimate."""
        from repro.simulators.theoretical import TheoreticalSimulator
        from repro.analysis import assign_promotions, partition

        ts = TaskSet(
            [
                PeriodicTask(name="p1", wcet=2_000, period=20_000),
                PeriodicTask(name="p2", wcet=3_000, period=30_000),
            ],
            [AperiodicTask(name="evt", wcet=4_000)],
        ).with_deadline_monotonic_priorities()
        ts = assign_promotions(partition(ts, 2), 2, tick=1_000)

        sim = TheoreticalSimulator(
            ts, 2, tick=1_000, overhead=0.0, aperiodic_arrivals={"evt": [5_500]}
        )
        # Query the estimate at arrival time by running up to it first.
        sim.run(5_500)
        controller = AperiodicAdmissionController(sim.policy)
        estimate = controller.estimate_response(5_500, wcet=4_000)
        sim.run(200_000)
        evt = next(j for j in sim.finished_jobs if j.task.name == "evt")
        assert evt.response_time <= estimate
