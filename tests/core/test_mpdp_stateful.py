"""Stateful property test of the MPDP policy (hypothesis state machine).

Drives the scheduler through arbitrary interleavings of its five
operations -- time advance + release, promotion, aperiodic arrival,
allocation, and completion of running work -- and checks the
structural invariants plus job conservation after every step.
"""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.core.mpdp import MPDPScheduler
from repro.core.task import AperiodicTask, Job, PeriodicTask, TaskSet


def _taskset():
    periodic = [
        PeriodicTask(name="fast", wcet=50, period=400, deadline=300,
                     low_priority=2, high_priority=2, cpu=0, promotion=100),
        PeriodicTask(name="mid", wcet=80, period=600,
                     low_priority=1, high_priority=1, cpu=1, promotion=200),
        PeriodicTask(name="slow", wcet=120, period=900,
                     low_priority=0, high_priority=0, cpu=0, promotion=400),
    ]
    aperiodic = [AperiodicTask(name="evt", wcet=60)]
    return TaskSet(periodic, aperiodic)


class MPDPMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.taskset = _taskset()
        self.scheduler = MPDPScheduler(self.taskset, n_cpus=2)
        self.now = 0
        self.aper_index = 0
        self.total_aperiodic = 0

    @rule(delta=st.integers(1, 250))
    def advance_and_release(self, delta):
        self.now += delta
        self.scheduler.release_due(self.now)

    @rule()
    def scheduling_cycle(self):
        # In the kernel, promotion is always followed by allocation in
        # the same (interrupt-disabled) scheduling cycle; the structural
        # invariants are only required to hold at cycle boundaries.
        self.scheduler.release_due(self.now)
        self.scheduler.promote_due(self.now)
        self.scheduler.allocate(self.now)

    @rule()
    def arrive_aperiodic(self):
        if self.total_aperiodic >= 20:
            return
        job = Job(self.taskset.aperiodic[0], release=self.now, index=self.aper_index)
        self.aper_index += 1
        self.total_aperiodic += 1
        self.scheduler.add_aperiodic(job)

    @rule()
    def allocate(self):
        self.scheduler.allocate(self.now)

    @rule(work=st.integers(1, 100))
    def execute_running(self, work):
        for job in list(self.scheduler.running):
            if job is None:
                continue
            job.remaining = max(0, job.remaining - work)
            if job.remaining == 0:
                self.scheduler.job_finished(job, self.now)

    @invariant()
    def structural_invariants_hold(self):
        if not hasattr(self, "scheduler"):
            return
        self.scheduler.check_invariants()

    @invariant()
    def periodic_population_conserved(self):
        if not hasattr(self, "scheduler"):
            return
        # Each periodic task has exactly one live (non-finished) job.
        live = {}
        sched = self.scheduler
        for job in list(sched.waiting) + list(sched.periodic_ready):
            if job.is_periodic:
                live[job.task.name] = live.get(job.task.name, 0) + 1
        for queue in sched.local:
            for job in queue:
                live[job.task.name] = live.get(job.task.name, 0) + 1
        for job in sched.running:
            if job is not None and job.is_periodic:
                live[job.task.name] = live.get(job.task.name, 0) + 1
        for task in self.taskset.periodic:
            assert live.get(task.name, 0) == 1, (task.name, live)

    @invariant()
    def finished_jobs_are_complete(self):
        if not hasattr(self, "scheduler"):
            return
        for job in self.scheduler.finished_jobs:
            assert job.remaining == 0
            assert job.finish_time is not None


MPDPStatefulTest = MPDPMachine.TestCase
MPDPStatefulTest.settings = settings(
    max_examples=40, stateful_step_count=60, deadline=None
)
