"""Unit tests for the MPDP policy engine."""

import pytest

from repro.core.mpdp import MPDPScheduler
from repro.core.task import AperiodicTask, Job, PeriodicTask, TaskSet


def task(name, wcet=100, period=1000, deadline=None, low=0, high=0, cpu=0, promotion=0):
    return PeriodicTask(
        name=name, wcet=wcet, period=period, deadline=deadline,
        low_priority=low, high_priority=high, cpu=cpu, promotion=promotion,
    )


def scheduler(tasks, n_cpus=2, aperiodic=()):
    return MPDPScheduler(TaskSet(tasks, aperiodic), n_cpus)


class TestConstruction:
    def test_requires_analysed_tasks(self):
        ts = TaskSet([PeriodicTask(name="x", wcet=10, period=100)])
        with pytest.raises(ValueError):
            MPDPScheduler(ts, 1)

    def test_rejects_out_of_range_cpu(self):
        with pytest.raises(ValueError):
            scheduler([task("x", cpu=5)], n_cpus=2)

    def test_rejects_bad_granularity(self):
        ts = TaskSet([task("x")])
        with pytest.raises(ValueError):
            MPDPScheduler(ts, 1, promotion_granularity="bogus")

    def test_initial_jobs_parked(self):
        s = scheduler([task("a"), task("b")])
        assert len(s.waiting) == 2
        assert s.idle()


class TestReleaseAndPromotion:
    def test_release_due_moves_to_prq(self):
        s = scheduler([task("a", promotion=500)])
        released = s.release_due(0)
        assert [j.task.name for j in released] == ["a"]
        assert len(s.periodic_ready) == 1

    def test_release_respects_offsets(self):
        s = scheduler([task("a", promotion=0)._replace(offset=300)])
        assert s.release_due(0) == []
        assert len(s.release_due(300)) == 1

    def test_promote_due_moves_to_local_queue(self):
        s = scheduler([task("a", cpu=1, promotion=200)])
        s.release_due(0)
        assert s.promote_due(100) == []
        promoted = s.promote_due(200)
        assert len(promoted) == 1
        assert len(s.local[1]) == 1
        assert len(s.periodic_ready) == 0

    def test_promote_running_job_in_place(self):
        s = scheduler([task("a", cpu=1, promotion=200)])
        s.release_due(0)
        s.allocate(0)
        running = [j for j in s.running if j is not None]
        assert len(running) == 1
        promoted = s.promote_due(200)
        assert promoted == running
        assert running[0].promoted

    def test_next_promotion_time(self):
        s = scheduler([task("a", promotion=300), task("b", promotion=100)])
        s.release_due(0)
        assert s.next_promotion_time() == 100

    def test_next_release_time(self):
        s = scheduler([task("a", period=700, promotion=0)])
        assert s.next_release_time() == 0


class TestAllocation:
    def test_promoted_job_runs_on_home_cpu(self):
        s = scheduler([task("a", cpu=1, promotion=0)])
        s.release_due(0)
        s.promote_due(0)
        alloc = s.allocate(0)
        assert alloc.assignment[1] is not None
        assert alloc.assignment[0] is None

    def test_aperiodic_preferred_over_unpromoted_periodic(self):
        s = scheduler([task("p", promotion=1000, deadline=1000, low=5)], n_cpus=1)
        s.release_due(0)
        aper = Job(AperiodicTask(name="a", wcet=50), release=0)
        s.add_aperiodic(aper)
        alloc = s.allocate(0)
        assert alloc.assignment[0] is aper

    def test_promoted_periodic_preempts_aperiodic(self):
        s = scheduler([task("p", cpu=0, promotion=0)], n_cpus=1)
        aper = Job(AperiodicTask(name="a", wcet=50), release=0)
        s.add_aperiodic(aper)
        alloc = s.allocate(0)
        assert alloc.assignment[0] is aper
        s.release_due(0)
        s.promote_due(0)
        alloc = s.allocate(0)
        assert alloc.assignment[0].task.name == "p"
        assert aper in alloc.preempted

    def test_affinity_avoids_gratuitous_switches(self):
        s = scheduler([task("a", low=2, promotion=1000, deadline=1000),
                       task("b", low=1, promotion=1000, deadline=1000)])
        s.release_due(0)
        first = s.allocate(0)
        second = s.allocate(10)
        assert second.assignment == first.assignment
        assert second.switches == []

    def test_aperiodics_fifo_order(self):
        s = scheduler([], n_cpus=1)
        first = Job(AperiodicTask(name="a1", wcet=10), release=0)
        second = Job(AperiodicTask(name="a2", wcet=10), release=5)
        s.add_aperiodic(first)
        s.add_aperiodic(second)
        alloc = s.allocate(5)
        assert alloc.assignment[0] is first

    def test_low_band_priority_order(self):
        s = scheduler(
            [task("weak", low=1, promotion=1000, deadline=1000),
             task("strong", low=9, promotion=1000, deadline=1000)],
            n_cpus=1,
        )
        s.release_due(0)
        alloc = s.allocate(0)
        assert alloc.assignment[0].task.name == "strong"

    def test_preempted_job_counted(self):
        s = scheduler(
            [task("weak", low=1, promotion=1000, deadline=1000),
             task("strong", low=9, promotion=1000, deadline=1000)],
            n_cpus=1,
        )
        s.release_due(0)  # both ready; strong wins
        alloc1 = s.allocate(0)
        weak = next(j for j in s.periodic_ready)
        # force: complete strong, then release a fresh strong ahead of weak
        strong = alloc1.assignment[0]
        strong.remaining = 0
        s.job_finished(strong, 10)
        alloc2 = s.allocate(10)
        assert alloc2.assignment[0] is weak

    def test_two_promoted_same_home_cpu_serialise(self):
        s = scheduler(
            [task("a", cpu=0, high=2, promotion=0),
             task("b", cpu=0, high=1, promotion=0)],
            n_cpus=2,
        )
        s.release_due(0)
        s.promote_due(0)
        alloc = s.allocate(0)
        assert alloc.assignment[0].task.name == "a"
        # b must wait for cpu0 even though cpu1 is idle (local phase).
        assert alloc.assignment[1] is None
        assert len(s.local[0]) == 1


class TestCompletion:
    def test_job_finished_rearms_periodic(self):
        s = scheduler([task("a", period=500, promotion=0)], n_cpus=1)
        s.release_due(0)
        alloc = s.allocate(0)
        job = alloc.assignment[0]
        job.remaining = 0
        next_job = s.job_finished(job, 100)
        assert next_job.release == 500
        assert next_job in s.waiting

    def test_job_finished_with_remaining_raises(self):
        s = scheduler([task("a", promotion=0)], n_cpus=1)
        s.release_due(0)
        alloc = s.allocate(0)
        with pytest.raises(ValueError):
            s.job_finished(alloc.assignment[0], 100)

    def test_aperiodic_finish_not_rearmed(self):
        s = scheduler([], n_cpus=1)
        job = Job(AperiodicTask(name="a", wcet=10), release=0)
        s.add_aperiodic(job)
        s.allocate(0)
        job.remaining = 0
        assert s.job_finished(job, 10) is None
        assert len(s.finished_jobs) == 1


class TestInvariants:
    def test_check_invariants_on_fresh_scheduler(self):
        s = scheduler([task("a"), task("b", cpu=1)])
        s.check_invariants()

    def test_invariants_after_busy_sequence(self):
        s = scheduler(
            [task("a", cpu=0, low=3, high=3, promotion=100, period=400, wcet=50),
             task("b", cpu=1, low=2, high=2, promotion=200, period=600, wcet=80),
             task("c", cpu=0, low=1, high=1, promotion=300, period=800, wcet=60)],
            n_cpus=2,
        )
        now = 0
        for step in range(40):
            now += 50
            s.release_due(now)
            s.promote_due(now)
            for job in list(s.running):
                if job is not None:
                    job.remaining = max(0, job.remaining - 50)
                    if job.remaining == 0:
                        s.job_finished(job, now)
            s.allocate(now)
            s.check_invariants()

    def test_detects_promoted_on_wrong_cpu(self):
        s = scheduler([task("a", cpu=1, promotion=0)])
        s.release_due(0)
        s.promote_due(0)
        s.allocate(0)
        job = s.running[1]
        s.running[1] = None
        s.running[0] = job
        with pytest.raises(AssertionError):
            s.check_invariants()
