"""Unit tests for the microkernel queue structures."""

import pytest

from repro.core.queues import (
    AperiodicReadyQueue,
    HighPriorityLocalQueue,
    PeriodicReadyQueue,
    WaitingPeriodicQueue,
)
from repro.core.task import AperiodicTask, Job, JobState, PeriodicTask


def pjob(name="p", low=0, high=0, release=0, cpu=0, promotion=0):
    task = PeriodicTask(
        name=name, wcet=10, period=1000, low_priority=low,
        high_priority=high, cpu=cpu, promotion=promotion,
    )
    return Job(task, release=release)


def ajob(name="a", release=0):
    return Job(AperiodicTask(name=name, wcet=10), release=release)


class TestPeriodicReadyQueue:
    def test_orders_by_low_priority(self):
        q = PeriodicReadyQueue()
        low = pjob("low", low=1)
        high = pjob("high", low=5)
        q.push(low)
        q.push(high)
        assert q.pop() is high
        assert q.pop() is low

    def test_fifo_for_equal_priority(self):
        q = PeriodicReadyQueue()
        first = pjob("first", low=3)
        second = pjob("second", low=3)
        q.push(first)
        q.push(second)
        assert q.pop() is first

    def test_rejects_aperiodic(self):
        with pytest.raises(TypeError):
            PeriodicReadyQueue().push(ajob())

    def test_rejects_promoted(self):
        job = pjob()
        job.promoted = True
        with pytest.raises(ValueError):
            PeriodicReadyQueue().push(job)

    def test_remove_mid_queue(self):
        q = PeriodicReadyQueue()
        a, b, c = pjob("a", low=3), pjob("b", low=2), pjob("c", low=1)
        for j in (a, b, c):
            q.push(j)
        q.remove(b)
        assert list(q) == [a, c]

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            PeriodicReadyQueue().pop()

    def test_peek_does_not_remove(self):
        q = PeriodicReadyQueue()
        job = pjob()
        q.push(job)
        assert q.peek() is job
        assert len(q) == 1


class TestHighPriorityLocalQueue:
    def test_home_cpu_enforced(self):
        q = HighPriorityLocalQueue(cpu=1)
        job = pjob(cpu=0)
        job.promoted = True
        with pytest.raises(ValueError):
            q.push(job)

    def test_unpromoted_rejected(self):
        q = HighPriorityLocalQueue(cpu=0)
        with pytest.raises(ValueError):
            q.push(pjob(cpu=0))

    def test_orders_by_high_priority(self):
        q = HighPriorityLocalQueue(cpu=0)
        weak = pjob("weak", high=1)
        strong = pjob("strong", high=9)
        for j in (weak, strong):
            j.promoted = True
            q.push(j)
        assert q.pop() is strong


class TestAperiodicReadyQueue:
    def test_fifo(self):
        q = AperiodicReadyQueue()
        a, b = ajob("a"), ajob("b")
        q.push(a)
        q.push(b)
        assert q.pop() is a
        assert q.pop() is b

    def test_requeue_front_preserves_position(self):
        q = AperiodicReadyQueue()
        a, b = ajob("a"), ajob("b")
        q.push(a)
        q.push(b)
        first = q.pop()
        q.requeue_front(first)
        assert q.pop() is a

    def test_rejects_periodic(self):
        with pytest.raises(TypeError):
            AperiodicReadyQueue().push(pjob())

    def test_pop_empty(self):
        with pytest.raises(IndexError):
            AperiodicReadyQueue().pop()


class TestWaitingPeriodicQueue:
    def test_orders_by_release_time(self):
        q = WaitingPeriodicQueue()
        late = pjob("late", release=500)
        early = pjob("early", release=100)
        q.push(late)
        q.push(early)
        assert q.next_release() == 100

    def test_pop_released_returns_due_jobs(self):
        q = WaitingPeriodicQueue()
        a = pjob("a", release=100)
        b = pjob("b", release=200)
        c = pjob("c", release=300)
        for j in (a, b, c):
            q.push(j)
        released = q.pop_released(now=200)
        assert released == [a, b]
        assert all(j.state is JobState.READY for j in released)
        assert len(q) == 1

    def test_pop_released_empty_when_none_due(self):
        q = WaitingPeriodicQueue()
        q.push(pjob(release=100))
        assert q.pop_released(now=50) == []

    def test_next_release_empty(self):
        assert WaitingPeriodicQueue().next_release() is None

    def test_rejects_aperiodic(self):
        with pytest.raises(TypeError):
            WaitingPeriodicQueue().push(ajob())
