"""Tests for the uniprocessor dual-priority reference simulator."""

import pytest

from repro.analysis import assign_promotions, random_taskset
from repro.core.dual_priority import DualPrioritySimulator
from repro.core.task import AperiodicTask, PeriodicTask, TaskSet


def analysed(tasks, aperiodic=()):
    ts = TaskSet(tasks, aperiodic).with_deadline_monotonic_priorities()
    return assign_promotions(ts, 1)


def test_single_task_runs_to_completion():
    ts = analysed([PeriodicTask(name="a", wcet=30, period=100)])
    sim = DualPrioritySimulator(ts)
    finished = sim.run(300)
    assert [j.finish_time for j in finished] == [30, 130, 230]
    assert not sim.deadline_misses()


def test_two_tasks_fixed_priority_after_promotion():
    # With zero laxity both are promoted immediately; DM order applies.
    ts = analysed([
        PeriodicTask(name="fast", wcet=20, period=100, deadline=40),
        PeriodicTask(name="slow", wcet=50, period=200),
    ])
    sim = DualPrioritySimulator(ts)
    sim.run(200)
    fast = [j for j in sim.finished if j.task.name == "fast"]
    assert fast[0].finish_time == 20  # highest DM priority first


def test_aperiodic_served_before_unpromoted_periodic():
    periodic = PeriodicTask(name="p", wcet=40, period=200)
    ts = analysed([periodic], [AperiodicTask(name="a", wcet=30, arrivals=(0,))])
    # Promotion leaves slack (U = D - W = 160), so the aperiodic runs first.
    sim = DualPrioritySimulator(ts)
    sim.run(200)
    aper = next(j for j in sim.finished if j.task.name == "a")
    per = next(j for j in sim.finished if j.task.name == "p")
    assert aper.finish_time == 30
    assert per.finish_time == 70
    assert not sim.deadline_misses()


def test_promotion_preempts_aperiodic():
    # Tight deadline: p must be promoted at U = D - C = 10.
    periodic = PeriodicTask(name="p", wcet=40, period=200, deadline=50)
    ts = analysed([periodic], [AperiodicTask(name="a", wcet=100, arrivals=(0,))])
    sim = DualPrioritySimulator(ts)
    sim.run(200)
    per = next(j for j in sim.finished if j.task.name == "p")
    assert per.finish_time <= 50
    aper = next(j for j in sim.finished if j.task.name == "a")
    assert aper.preemptions >= 1
    assert aper.finish_time == 140  # 10 head start + 40 blocked + 90 rest


def test_no_deadline_misses_on_schedulable_random_sets():
    for seed in range(5):
        ts = random_taskset(5, 0.6, seed=seed, min_period=5_000, max_period=50_000)
        ts = assign_promotions(ts, 1)
        sim = DualPrioritySimulator(ts)
        horizon = min(ts.hyperperiod, 500_000)
        sim.run(horizon)
        assert sim.deadline_misses() == [], f"seed {seed} missed deadlines"


def test_response_times_query():
    ts = analysed([PeriodicTask(name="a", wcet=10, period=100)])
    sim = DualPrioritySimulator(ts)
    sim.run(250)
    assert sim.response_times("a") == [10, 10, 10]


def test_work_conservation_single_cpu():
    """Total executed time equals sum of finished execution times."""
    ts = random_taskset(4, 0.5, seed=11, min_period=10_000, max_period=40_000)
    ts = assign_promotions(ts, 1)
    sim = DualPrioritySimulator(ts)
    sim.run(200_000)
    for job in sim.finished:
        assert job.remaining == 0
        assert job.finish_time - job.release >= job.task.acet
