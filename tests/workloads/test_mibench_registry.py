"""Tests for the MiBench registry and the automotive workload builder."""

import pytest

from repro.analysis.schedulability import analyse_taskset
from repro.workloads import (
    AUTOMOTIVE_APERIODIC,
    AUTOMOTIVE_PERIODIC,
    MIBENCH_AUTOMOTIVE,
    automotive_bindings,
    build_automotive_taskset,
    get_benchmark,
    list_benchmarks,
    prepare_taskset,
    run_benchmark,
)
from repro.workloads.automotive import WCET_MARGIN, base_utilization
from repro.workloads.datasets import dataset_sizes


class TestRegistry:
    def test_all_groups_present(self):
        groups = {spec.group for spec in MIBENCH_AUTOMOTIVE.values()}
        assert groups == {"basicmath", "bitcount", "qsort", "susan"}

    def test_both_datasets_everywhere(self):
        for name in list_benchmarks():
            assert name.endswith("-small") or name.endswith("-large")

    def test_large_wcet_exceeds_small(self):
        for name in list_benchmarks():
            if name.endswith("-small"):
                large = name.replace("-small", "-large")
                assert (
                    MIBENCH_AUTOMOTIVE[large].wcet_cycles
                    > MIBENCH_AUTOMOTIVE[name].wcet_cycles
                )

    def test_paper_calibration_point(self):
        # susan/large = the aperiodic task: ~10.1 s at 50 MHz.
        spec = get_benchmark("susan-smoothing-large")
        assert spec.wcet_cycles == 505_000_000
        assert spec.wcet_cycles / 50_000_000 == pytest.approx(10.1)

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            get_benchmark("quake-3")

    def test_list_by_group(self):
        names = list_benchmarks(group="bitcount")
        assert len(names) == 10
        assert all("bitcount" in n for n in names)

    def test_every_benchmark_actually_runs(self):
        for name in list_benchmarks():
            if name.endswith("-large") and "susan" in name:
                continue  # large susan is slow in pure Python; small covers it
            result = run_benchmark(name)
            assert result.work_units > 0

    def test_work_units_scale_with_dataset(self):
        small = run_benchmark("qsort-qsort-small").work_units
        large = run_benchmark("qsort-qsort-large").work_units
        assert large > 2 * small
        assert dataset_sizes("large")["array"] > dataset_sizes("small")["array"]

    def test_runs_are_deterministic(self):
        a = run_benchmark("bitcount-parallel-small")
        b = run_benchmark("bitcount-parallel-small")
        assert a == b


class TestAutomotiveWorkload:
    def test_eighteen_periodic_one_aperiodic(self):
        assert len(AUTOMOTIVE_PERIODIC) == 18
        ts = build_automotive_taskset(0.5, 2)
        assert len(ts.periodic) == 18
        assert len(ts.aperiodic) == 1
        assert ts.aperiodic[0].name == AUTOMOTIVE_APERIODIC

    @pytest.mark.parametrize("n_cpus", [2, 3, 4])
    @pytest.mark.parametrize("util", [0.40, 0.50, 0.60])
    def test_utilization_targets_met(self, n_cpus, util):
        ts = build_automotive_taskset(util, n_cpus)
        assert ts.utilization == pytest.approx(util * n_cpus, rel=0.02)

    def test_acet_below_wcet_by_margin(self):
        ts = build_automotive_taskset(0.5, 2)
        for task in ts.periodic:
            assert task.wcet == pytest.approx(task.acet * WCET_MARGIN, rel=0.01)

    def test_workload_scales_with_cpus(self):
        two = build_automotive_taskset(0.5, 2)
        four = build_automotive_taskset(0.5, 4)
        # Same utilization fraction on more cpus = shorter periods.
        assert four.by_name("qsort-qsort-large").period < two.by_name(
            "qsort-qsort-large"
        ).period

    def test_prepare_produces_schedulable_partition(self):
        for n_cpus in (2, 3, 4):
            ts = build_automotive_taskset(0.60, n_cpus)
            prepared = prepare_taskset(ts, n_cpus, tick=5_000_000)
            report = analyse_taskset(prepared, n_cpus)
            assert report.schedulable
            prepared.require_analysed()

    def test_promotions_tick_aligned(self):
        ts = prepare_taskset(build_automotive_taskset(0.5, 2), 2, tick=5_000_000)
        assert all(t.promotion % 5_000_000 == 0 for t in ts.periodic)

    def test_bindings_cover_all_tasks(self):
        bindings = automotive_bindings()
        ts = build_automotive_taskset(0.5, 2)
        for task in ts:
            assert task.name in bindings

    def test_base_utilization_positive(self):
        assert 0.5 < base_utilization() < 3.0

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            build_automotive_taskset(0.0, 2)
        with pytest.raises(ValueError):
            build_automotive_taskset(1.0, 2)
