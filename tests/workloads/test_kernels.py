"""Functional tests of the MiBench kernel implementations."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads import basicmath, bitcount, qsort_bench, susan
from repro.workloads.datasets import (
    integer_array,
    number_array,
    synthetic_image,
    vector_array,
)


class TestBasicmath:
    def test_integer_sqrt_exact_squares(self):
        for n in (0, 1, 4, 9, 144, 10_000, 2**30):
            root, _ = basicmath.integer_sqrt(n)
            assert root == int(math.isqrt(n))

    @settings(max_examples=100, deadline=None)
    @given(st.integers(0, 2**40))
    def test_integer_sqrt_property(self, n):
        root, iterations = basicmath.integer_sqrt(n)
        assert root * root <= n < (root + 1) * (root + 1)
        assert iterations < 64

    def test_integer_sqrt_negative_rejected(self):
        with pytest.raises(ValueError):
            basicmath.integer_sqrt(-1)

    def test_square_roots_batch(self):
        checksum, units = basicmath.square_roots([4.0, 9.0, 16.0])
        assert checksum == 2 + 3 + 4
        assert units > 0

    def test_first_derivative_of_linear_is_constant(self):
        samples = [2.0 * x for x in range(10)]
        total, units = basicmath.first_derivative(samples)
        assert total == pytest.approx(2.0 * 8)  # 8 interior points
        assert units == 24

    def test_first_derivative_validation(self):
        with pytest.raises(ValueError):
            basicmath.first_derivative([1.0, 2.0])
        with pytest.raises(ValueError):
            basicmath.first_derivative([1.0, 2.0, 3.0], step=0)

    def test_angle_roundtrip(self):
        total, _ = basicmath.angle_conversions([180.0])
        assert total == pytest.approx(180.0)

    def test_solve_cubic_known_roots(self):
        # (x-1)(x-2)(x-3) = x^3 - 6x^2 + 11x - 6
        roots, _ = basicmath.solve_cubic(1, -6, 11, -6)
        assert roots == pytest.approx([1.0, 2.0, 3.0], abs=1e-6)

    def test_solve_cubic_single_real_root(self):
        # x^3 + x + 10 has one real root at x = -2.
        roots, _ = basicmath.solve_cubic(1, 0, 1, 10)
        assert len(roots) == 1
        assert roots[0] == pytest.approx(-2.0, abs=1e-6)

    def test_solve_cubic_rejects_quadratic(self):
        with pytest.raises(ValueError):
            basicmath.solve_cubic(0, 1, 2, 3)

    @settings(max_examples=50, deadline=None)
    @given(
        b=st.floats(-10, 10), c=st.floats(-10, 10), d=st.floats(-10, 10)
    )
    def test_solve_cubic_roots_satisfy_equation(self, b, c, d):
        roots, _ = basicmath.solve_cubic(1.0, b, c, d)
        for x in roots:
            residual = x**3 + b * x**2 + c * x + d
            scale = max(1.0, abs(x) ** 3, abs(b * x * x), abs(c * x), abs(d))
            assert abs(residual) / scale < 1e-6


class TestBitcount:
    @settings(max_examples=200, deadline=None)
    @given(st.integers(0, 2**32 - 1))
    def test_all_counters_agree(self, value):
        expected = bin(value).count("1")
        for name, func in bitcount.COUNTERS.items():
            count, _units = func(value)
            assert count == expected, name

    def test_edge_values(self):
        for value in (0, 1, 0xFFFFFFFF, 0x80000000, 0x55555555):
            assert bitcount.crosscheck([value])

    def test_count_batch_totals(self):
        total, units = bitcount.count_batch("parallel", [0b101, 0b11])
        assert total == 4
        assert units == 12

    def test_unknown_counter_rejected(self):
        with pytest.raises(ValueError):
            bitcount.count_batch("bogus", [1])

    def test_sparse_cost_tracks_population(self):
        _, low = bitcount.count_sparse(0b1)
        _, high = bitcount.count_sparse(0xFFFFFFFF)
        assert high > low


class TestQsort:
    def test_sorts_integers(self):
        data, units = qsort_bench.sort_integers([5, 3, 8, 1, 9, 2])
        assert data == [1, 2, 3, 5, 8, 9]
        assert units > 0

    def test_sorts_real_dataset(self):
        data, _ = qsort_bench.sort_integers(integer_array("small"))
        assert qsort_bench.is_sorted(data)
        assert sorted(integer_array("small")) == data

    def test_sorts_vectors_by_magnitude(self):
        vectors, _ = qsort_bench.sort_vectors(vector_array("small"))
        mags = [qsort_bench.vector_magnitude_squared(v) for v in vectors]
        assert mags == sorted(mags)

    def test_preserves_multiset(self):
        original = integer_array("small")
        data, _ = qsort_bench.sort_integers(original)
        assert sorted(original) == data

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.integers(-1000, 1000), max_size=200))
    def test_quicksort_property(self, values):
        data, _ = qsort_bench.sort_integers(values)
        assert data == sorted(values)

    def test_empty_and_singleton(self):
        assert qsort_bench.sort_integers([])[0] == []
        assert qsort_bench.sort_integers([7])[0] == [7]


class TestSusan:
    def test_smooth_preserves_shape_and_range(self):
        image = synthetic_image("small")
        out, units = susan.smooth(image)
        assert len(out) == len(image)
        assert all(0 <= v <= 255 for row in out for v in row)
        assert units > 0

    def test_smooth_reduces_noise_variance(self):
        image = synthetic_image("small")
        out, _ = susan.smooth(image)

        def interior_roughness(img):
            total = 0
            for y in range(4, len(img) - 4):
                for x in range(4, len(img[0]) - 4):
                    total += abs(img[y][x] - img[y][x - 1])
            return total

        assert interior_roughness(out) < interior_roughness(image)

    def test_edges_fire_on_rectangle_border(self):
        image = synthetic_image("small")
        response, _ = susan.edges(image)
        side = len(image)
        top, left, right = side // 8, side // 8, side // 2
        # Some response along the rectangle's top edge.
        border = [response[top][x] for x in range(left + 1, right - 1)]
        assert any(v > 0 for v in border)

    def test_flat_image_has_no_edges_or_corners(self):
        flat = [[128] * 24 for _ in range(24)]
        response, _ = susan.edges(flat)
        assert all(v == 0 for row in response for v in row)
        found, _ = susan.corners(flat)
        assert found == []

    def test_corners_found_near_rectangle_vertices(self):
        image = synthetic_image("small")
        found, _ = susan.corners(image)
        assert found, "expected at least one corner"
        side = len(image)
        vertices = [
            (side // 8, side // 8), (side // 8, side // 2 - 1),
            (side // 2 - 1, side // 8), (side // 2 - 1, side // 2 - 1),
        ]
        def near_vertex(point):
            return any(abs(point[0] - vy) <= 2 and abs(point[1] - vx) <= 2
                       for vy, vx in vertices)
        assert any(near_vertex(p) for p in found)

    def test_ragged_image_rejected(self):
        with pytest.raises(ValueError):
            susan.edges([[1, 2], [3]])

    def test_empty_image_rejected(self):
        with pytest.raises(ValueError):
            susan.smooth([])

    def test_mask_is_circular_and_symmetric(self):
        offsets = set(susan.MASK_OFFSETS)
        assert (0, 0) not in offsets
        for dy, dx in offsets:
            assert (-dy, -dx) in offsets
        assert len(offsets) == 36  # 37-pixel USAN mask minus the nucleus
