"""Tests for the CAN bus model and its response-time analysis."""

import pytest

from repro import CLOCK_HZ
from repro.workloads.canbus import (
    CANFrame,
    CANMessage,
    automotive_message_set,
    bus_utilization,
    can_response_time,
    frame_arrival_times,
)


class TestCANFrame:
    def test_identifier_range(self):
        CANFrame(0x7FF, 8)
        with pytest.raises(ValueError):
            CANFrame(0x800, 8)
        with pytest.raises(ValueError):
            CANFrame(-1, 8)

    def test_dlc_range(self):
        with pytest.raises(ValueError):
            CANFrame(0x100, 9)

    def test_max_bits_known_values(self):
        # 8-byte frame: 64 + 47 + floor(97/4) = 135 bits (classic bound).
        assert CANFrame(0x100, 8).max_bits == 64 + 47 + 24
        # 0-byte frame: 0 + 47 + floor(33/4) = 55 bits.
        assert CANFrame(0x100, 0).max_bits == 47 + 8

    def test_transmission_time_at_500k(self):
        frame = CANFrame(0x100, 8)
        assert frame.transmission_time(500_000) == pytest.approx(135 / 500_000)
        # 270 us at 500 kbit/s = 13_500 cycles at 50 MHz.
        assert frame.transmission_cycles(500_000) == 13_500

    def test_bitrate_validation(self):
        with pytest.raises(ValueError):
            CANFrame(0x1, 1).transmission_time(0)


class TestCANMessage:
    def test_deadline_defaults_to_period(self):
        msg = CANMessage(CANFrame(0x10, 4), period_cycles=1_000_000)
        assert msg.deadline_cycles == 1_000_000

    def test_priority_is_identifier(self):
        low = CANMessage(CANFrame(0x600, 4), period_cycles=1_000)
        high = CANMessage(CANFrame(0x080, 4), period_cycles=1_000)
        assert high.priority < low.priority

    def test_validation(self):
        with pytest.raises(ValueError):
            CANMessage(CANFrame(0x10, 4), period_cycles=0)


class TestResponseTime:
    def test_highest_priority_waits_only_for_blocking(self):
        messages = automotive_message_set()
        top = messages[0]
        response = can_response_time(top, messages, bitrate=500_000)
        own = top.frame.transmission_cycles(500_000)
        longest_lower = max(
            m.frame.transmission_cycles(500_000) for m in messages[1:]
        )
        assert response == own + longest_lower

    def test_lower_priority_sees_interference(self):
        messages = automotive_message_set()
        top = can_response_time(messages[0], messages, bitrate=500_000)
        bottom = can_response_time(messages[-1], messages, bitrate=500_000)
        assert bottom > top

    def test_all_automotive_messages_schedulable_at_500k(self):
        messages = automotive_message_set()
        for message in messages:
            response = can_response_time(message, messages, bitrate=500_000)
            assert response is not None
            assert response <= message.deadline_cycles

    def test_overload_detected_at_low_bitrate(self):
        messages = automotive_message_set()
        # At 10 kbit/s the 10 ms streams alone exceed the wire.
        assert bus_utilization(messages, bitrate=10_000) > 1.0
        lowest = messages[-1]
        assert can_response_time(lowest, messages, bitrate=10_000) is None

    def test_utilization_sane_at_500k(self):
        u = bus_utilization(automotive_message_set(), bitrate=500_000)
        assert 0.05 < u < 0.5


class TestArrivalTimes:
    def test_periodic_completions(self):
        msg = CANMessage(CANFrame(0x100, 8), period_cycles=1_000_000)
        times = frame_arrival_times(msg, bitrate=500_000, horizon=3_500_000)
        wire = msg.frame.transmission_cycles(500_000)
        assert times == [
            wire, 1_000_000 + wire, 2_000_000 + wire, 3_000_000 + wire,
        ]

    def test_offset_shifts_series(self):
        msg = CANMessage(CANFrame(0x100, 0), period_cycles=1_000_000)
        plain = frame_arrival_times(msg, 500_000, 3_000_000)
        shifted = frame_arrival_times(msg, 500_000, 3_000_000, offset=123)
        assert [t - 123 for t in shifted] == plain[: len(shifted)]

    def test_feeds_the_theoretical_simulator(self):
        """End to end: CAN frame completions release the aperiodic."""
        from repro.analysis import assign_promotions, partition
        from repro.core.task import AperiodicTask, PeriodicTask, TaskSet
        from repro.simulators.theoretical import TheoreticalSimulator

        msg = CANMessage(CANFrame(0x080, 8, "camera"), period_cycles=600_000)
        arrivals = frame_arrival_times(msg, 500_000, horizon=2_000_000)
        ts = TaskSet(
            [PeriodicTask(name="p", wcet=50_000, period=400_000)],
            [AperiodicTask(name="vision", wcet=80_000)],
        ).with_deadline_monotonic_priorities()
        ts = assign_promotions(partition(ts, 2), 2, tick=10_000)
        sim = TheoreticalSimulator(
            ts, 2, tick=10_000, overhead=0.0,
            aperiodic_arrivals={"vision": arrivals},
        )
        sim.run(2_500_000)
        vision_jobs = [j for j in sim.finished_jobs if j.task.name == "vision"]
        assert len(vision_jobs) == len(arrivals)


class TestBurstyArrivals:
    """Satellite: seeded bursty traffic is deterministic, including
    across worker processes."""

    def test_same_seed_same_arrivals(self):
        from repro.workloads.canbus import bursty_arrivals

        a = bursty_arrivals(seed=7, horizon=2_000_000, mean_burst_gap=200_000)
        b = bursty_arrivals(seed=7, horizon=2_000_000, mean_burst_gap=200_000)
        assert a == b and len(a) > 0

    def test_different_seeds_differ(self):
        from repro.workloads.canbus import bursty_arrivals

        a = bursty_arrivals(seed=1, horizon=2_000_000, mean_burst_gap=200_000)
        b = bursty_arrivals(seed=2, horizon=2_000_000, mean_burst_gap=200_000)
        assert a != b

    def test_arrivals_sorted_and_within_horizon(self):
        from repro.workloads.canbus import bursty_arrivals

        arrivals = bursty_arrivals(seed=3, horizon=1_000_000,
                                   mean_burst_gap=100_000)
        assert arrivals == sorted(arrivals)
        assert all(0 <= t < 1_000_000 for t in arrivals)

    def test_burst_shape_respected(self):
        from repro.workloads.canbus import bursty_arrivals

        arrivals = bursty_arrivals(seed=5, horizon=5_000_000,
                                   mean_burst_gap=500_000,
                                   burst_size=(3, 3), intra_burst_gap=1_000)
        # Every burst has exactly 3 frames 1_000 cycles apart (modulo
        # horizon truncation of the final burst).
        assert len(arrivals) >= 3
        gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
        intra = [g for g in gaps if g == 1_000]
        assert len(intra) >= len(arrivals) // 3

    def test_validation(self):
        from repro.workloads.canbus import bursty_arrivals

        with pytest.raises(ValueError):
            bursty_arrivals(seed=0, horizon=0, mean_burst_gap=1_000)
        with pytest.raises(ValueError):
            bursty_arrivals(seed=0, horizon=1_000, mean_burst_gap=0)
        with pytest.raises(ValueError):
            bursty_arrivals(seed=0, horizon=1_000, mean_burst_gap=100,
                            burst_size=(5, 2))

    def test_deterministic_across_processes(self):
        from repro.perf.executor import pmap
        from repro.workloads.canbus import (
            bursty_arrivals,
            bursty_arrivals_point,
        )

        points = [
            {"seed": s, "horizon": 2_000_000, "mean_burst_gap": 250_000}
            for s in (0, 1, 2, 0)
        ]
        stats = {}
        results = pmap(bursty_arrivals_point, points, max_workers=2,
                       stats=stats)
        assert results[0] == results[3]  # same seed agrees across workers
        assert results[0] != results[1]
        for point, result in zip(points, results):
            assert result == bursty_arrivals(**point)  # matches in-process
