"""Verified WCETs as C_i: the bridge from the abstract-interpretation
lint pass into the response-time / schedulability pipeline."""

import pytest

from repro.analysis.verified import (
    DEFAULT_SPECS,
    KernelTaskSpec,
    analyse_verified,
    scale_periods,
    verified_taskset,
    verified_wcets,
)

KERNELS = sorted({spec.kernel for spec in DEFAULT_SPECS})


@pytest.fixture(scope="module")
def bounds():
    return verified_wcets(KERNELS)


class TestVerifiedWcets:
    def test_covers_requested_kernels(self, bounds):
        assert sorted(bounds) == KERNELS

    def test_verified_never_exceeds_annotated(self, bounds):
        for wcet in bounds.values():
            assert 0 < wcet.verified <= wcet.annotated

    def test_some_kernel_strictly_tighter(self, bounds):
        assert any(w.verified < w.annotated for w in bounds.values())

    def test_unknown_source_rejected(self, bounds):
        with pytest.raises(ValueError):
            next(iter(bounds.values())).cycles("guessed")

    def test_unknown_kernel_raises(self):
        with pytest.raises(KeyError):
            verified_wcets(["no_such_kernel"])


class TestVerifiedTaskset:
    def test_wcets_follow_the_source(self, bounds):
        annotated = verified_taskset(wcet_source="annotated")
        verified = verified_taskset(wcet_source="verified")
        by_name = {spec.name: spec.kernel for spec in DEFAULT_SPECS}
        for task_a, task_v in zip(annotated.periodic, verified.periodic):
            kernel = by_name[task_a.name]
            assert task_a.wcet == bounds[kernel].annotated
            assert task_v.wcet == bounds[kernel].verified

    def test_bad_source_rejected(self):
        with pytest.raises(ValueError):
            verified_taskset(wcet_source="vibes")


class TestAnalyseVerified:
    def test_verified_bounds_admit_default_set(self):
        result = analyse_verified(wcet_source="verified")
        assert result.schedulable
        assert result.report is not None
        assert result.report.total_utilization < 1.0

    def test_annotated_bounds_reject_default_set(self):
        """The headline effect: same tasks, same periods, but the padded
        annotation bounds overload two processors."""
        result = analyse_verified(wcet_source="annotated")
        assert not result.schedulable
        assert result.error is not None

    def test_relaxed_periods_admit_both(self):
        specs = scale_periods(DEFAULT_SPECS, 4.0)
        for source in ("verified", "annotated"):
            assert analyse_verified(specs=specs, wcet_source=source).schedulable

    def test_impossible_deadline_is_a_verdict_not_a_crash(self):
        spec = KernelTaskSpec(name="rush", kernel="popcount32", period=10)
        result = analyse_verified(specs=(spec,), n_cpus=1)
        assert not result.schedulable and result.error


def test_scale_periods_scales_deadlines_too():
    spec = KernelTaskSpec(name="t", kernel="popcount32", period=100, deadline=80)
    (scaled,) = scale_periods((spec,), 2.0)
    assert scaled.period == 200 and scaled.deadline == 160


def test_verified_wcet_sweep_row_shape():
    from repro.experiments.runner import verified_wcet_sweep

    result = verified_wcet_sweep(period_scales=(1.0, 4.0))
    rows = {row["period_scale"]: row for row in result.rows}
    assert rows[1.0]["verified_only"] is True
    assert rows[4.0]["verified_only"] is False
    assert rows[4.0]["annotated_schedulable"] is True
