"""Tests for schedulability analysis and utilization bounds."""

import pytest

from repro.analysis.schedulability import (
    analyse_taskset,
    breakdown_utilization,
    liu_layland_bound,
    utilization_test,
    verify_partition,
)
from repro.core.task import PeriodicTask, TaskSet


def task(name, wcet, period, high=0, cpu=0):
    return PeriodicTask(name=name, wcet=wcet, period=period, high_priority=high, cpu=cpu)


def test_liu_layland_classics():
    assert liu_layland_bound(1) == pytest.approx(1.0)
    assert liu_layland_bound(2) == pytest.approx(0.828427, abs=1e-5)
    assert liu_layland_bound(1000) == pytest.approx(0.6934, abs=1e-3)


def test_liu_layland_invalid():
    with pytest.raises(ValueError):
        liu_layland_bound(0)


def test_utilization_test_accepts_light_load():
    assert utilization_test([task("a", 10, 100), task("b", 10, 100)])


def test_utilization_test_rejects_heavy_load():
    assert not utilization_test([task("a", 50, 100), task("b", 45, 100)])


def test_utilization_test_empty():
    assert utilization_test([])


def test_analyse_taskset_reports_per_cpu():
    ts = TaskSet([
        task("a", 10, 100, high=2, cpu=0),
        task("b", 20, 100, high=1, cpu=1),
    ])
    report = analyse_taskset(ts, 2)
    assert report.schedulable
    assert set(report.per_cpu) == {0, 1}
    assert report.per_cpu_utilization[0] == pytest.approx(0.1)
    assert report.per_cpu_utilization[1] == pytest.approx(0.2)
    assert report.failing_tasks() == []
    assert "cpu 0" in report.format()


def test_analyse_detects_failure():
    ts = TaskSet([
        task("a", 60, 100, high=2, cpu=0),
        task("b", 50, 100, high=1, cpu=0),
    ])
    report = analyse_taskset(ts, 1)
    assert not report.schedulable
    assert report.failing_tasks() == ["b"]
    with pytest.raises(ValueError):
        verify_partition(ts, 1)


def test_verify_partition_passes_good_set():
    ts = TaskSet([task("a", 10, 100, cpu=0)])
    verify_partition(ts, 1)


def test_breakdown_utilization_single_task():
    value = breakdown_utilization([task("a", 50, 1000)])
    # A single implicit-deadline task is schedulable up to U = 1.
    assert value == pytest.approx(1.0, abs=0.01)


def test_breakdown_utilization_empty():
    assert breakdown_utilization([]) == 0.0


def test_breakdown_exceeds_current_utilization():
    tasks = [task("a", 10, 1000, high=2), task("b", 10, 1000, high=1)]
    value = breakdown_utilization(tasks)
    assert value >= 0.02
