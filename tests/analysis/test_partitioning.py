"""Tests for the partitioning heuristics."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.partitioning import PartitioningError, partition
from repro.analysis.schedulability import analyse_taskset
from repro.analysis.taskgen import random_taskset
from repro.core.task import PeriodicTask, TaskSet


def task(name, wcet, period, high=0):
    return PeriodicTask(name=name, wcet=wcet, period=period, high_priority=high)


def test_partition_assigns_all_tasks():
    ts = random_taskset(8, 1.2, seed=1)
    assigned = partition(ts, 2)
    assert all(0 <= t.cpu < 2 for t in assigned.periodic)
    assert len(assigned.periodic) == 8


def test_partition_result_is_schedulable():
    for heuristic in ("first-fit", "best-fit", "worst-fit"):
        ts = random_taskset(10, 1.5, seed=7)
        assigned = partition(ts, 3, heuristic=heuristic)
        report = analyse_taskset(assigned, 3)
        assert report.schedulable, heuristic


def test_worst_fit_balances_load():
    ts = TaskSet([
        task("a", 30, 100, high=4),
        task("b", 30, 100, high=3),
        task("c", 30, 100, high=2),
        task("d", 30, 100, high=1),
    ])
    assigned = partition(ts, 2, heuristic="worst-fit")
    per_cpu = assigned.utilization_per_cpu(2)
    assert per_cpu[0] == pytest.approx(per_cpu[1])


def test_first_fit_packs_first_cpu():
    ts = TaskSet([
        task("a", 10, 100, high=2),
        task("b", 10, 100, high=1),
    ])
    assigned = partition(ts, 2, heuristic="first-fit")
    assert all(t.cpu == 0 for t in assigned.periodic)


def test_infeasible_set_raises():
    ts = TaskSet([
        task("a", 90, 100, high=3),
        task("b", 90, 100, high=2),
        task("c", 90, 100, high=1),
    ])
    with pytest.raises(PartitioningError):
        partition(ts, 2)


def test_unknown_heuristic_rejected():
    ts = TaskSet([task("a", 10, 100)])
    with pytest.raises(ValueError):
        partition(ts, 2, heuristic="magic")


def test_invalid_cpu_count():
    ts = TaskSet([task("a", 10, 100)])
    with pytest.raises(ValueError):
        partition(ts, 0)


def test_aperiodics_pass_through():
    ts = random_taskset(4, 0.5, seed=3, n_aperiodic=2, aperiodic_wcet=100)
    assigned = partition(ts, 2)
    assert len(assigned.aperiodic) == 2


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000), n_cpus=st.integers(1, 4))
def test_partition_feasible_property(seed, n_cpus):
    """Whenever a heuristic succeeds, the result passes the exact test."""
    ts = random_taskset(6, 0.45 * n_cpus, seed=seed)
    try:
        assigned = partition(ts, n_cpus)
    except PartitioningError:
        return  # heuristics are allowed to fail; they must not lie
    report = analyse_taskset(assigned, n_cpus)
    assert report.schedulable
