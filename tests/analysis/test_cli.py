"""Tests for the analysis command-line tool."""

import pytest

from repro.analysis.cli import load_task_csv, main, run_analysis

CSV = """# name,wcet,period[,deadline]
name,wcet,period,deadline
ctrl,10000,100000,80000
poll,20000,200000
diag,5000,50000
"""


@pytest.fixture
def csv_file(tmp_path):
    path = tmp_path / "tasks.csv"
    path.write_text(CSV)
    return str(path)


def test_load_task_csv(csv_file):
    ts = load_task_csv(csv_file)
    assert len(ts.periodic) == 3
    ctrl = ts.by_name("ctrl")
    assert ctrl.wcet == 10_000
    assert ctrl.deadline == 80_000
    poll = ts.by_name("poll")
    assert poll.deadline == poll.period  # implicit deadline
    # Deadline-monotonic priorities were assigned.
    assert ts.by_name("diag").high_priority > ctrl.high_priority


def test_run_analysis_pipeline(csv_file):
    ts = load_task_csv(csv_file)
    analysed, report, rows = run_analysis(ts, n_cpus=2, tick=10_000)
    assert report.schedulable
    assert len(rows) == 3
    analysed.require_analysed()
    assert all(t.promotion % 10_000 == 0 for t in analysed.periodic)


def test_main_prints_tables(csv_file, capsys):
    assert main([csv_file, "--cpus", "2", "--tick", "10000"]) == 0
    out = capsys.readouterr().out
    assert "schedulable: True" in out
    assert "ctrl" in out
    assert "U=D-W" in out


def test_main_reports_failure(tmp_path, capsys):
    path = tmp_path / "bad.csv"
    path.write_text("a,90000,100000\nb,90000,100000\n")
    assert main([str(path), "--cpus", "1"]) == 1
    assert "analysis failed" in capsys.readouterr().err
