"""Tests for promotion-time computation (U_i = D_i - W_i)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.promotion import assign_promotions, promotion_table, promotion_time
from repro.analysis.taskgen import random_taskset
from repro.analysis.partitioning import partition
from repro.core.task import PeriodicTask, TaskSet


def task(name, wcet, period, deadline=None, high=0, cpu=0):
    return PeriodicTask(
        name=name, wcet=wcet, period=period, deadline=deadline, high_priority=high, cpu=cpu
    )


def test_single_task_promotion_is_laxity():
    t = task("a", 30, 100)
    assert promotion_time(t, [t]) == 70


def test_promotion_zero_when_no_laxity():
    t = task("a", 100, 100)
    assert promotion_time(t, [t]) == 0


def test_unschedulable_task_raises():
    hp = task("hp", 60, 100, high=2)
    lo = task("lo", 50, 100, high=1)
    with pytest.raises(ValueError):
        promotion_time(lo, [hp, lo])


def test_assign_promotions_all_tasks():
    ts = TaskSet([
        task("a", 10, 100, high=2),
        task("b", 20, 200, high=1),
    ])
    analysed = assign_promotions(ts, 1)
    promotions = {t.name: t.promotion for t in analysed.periodic}
    assert promotions["a"] == 90
    # b: w = 20 + ceil(w/100)*10 -> 30 -> 30 stable; U = 200 - 30
    assert promotions["b"] == 170


def test_tick_rounding_reserves_observation_latency():
    ts = TaskSet([task("a", 10, 100, high=1)])  # W = 10, D = 100
    analysed = assign_promotions(ts, 1, tick=40)
    # U = floor((D - W - tick)/tick)*tick = floor(50/40)*40 = 40.
    assert analysed.periodic[0].promotion == 40


def test_tick_analysis_rejects_tight_deadline():
    # W + tick > D: the kernel cannot observe the promotion in time.
    ts = TaskSet([task("a", 10, 100, high=1)])
    with pytest.raises(ValueError):
        assign_promotions(ts, 1, tick=95)


def test_tick_must_be_positive():
    ts = TaskSet([task("a", 10, 100)])
    with pytest.raises(ValueError):
        assign_promotions(ts, 1, tick=0)


def test_cpu_out_of_range_rejected():
    ts = TaskSet([task("a", 10, 100, cpu=7)])
    with pytest.raises(ValueError):
        assign_promotions(ts, 2)


def test_analysis_is_per_processor():
    """Tasks on different cpus must not interfere."""
    a = task("a", 50, 100, high=2, cpu=0)
    b = task("b", 50, 100, high=1, cpu=1)
    analysed = assign_promotions(TaskSet([a, b]), 2)
    # On separate processors both have W = C.
    assert all(t.promotion == 50 for t in analysed.periodic)


def test_promotion_table_rows():
    ts = TaskSet([task("a", 10, 100, high=2), task("b", 30, 300, high=1, cpu=0)])
    rows = promotion_table(ts, 1)
    assert len(rows) == 2
    assert rows[0]["task"] == "a"
    assert rows[0]["promotion"] == 90
    assert all(r["schedulable"] for r in rows)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000), util=st.floats(0.2, 0.7))
def test_promotion_bounds_property(seed, util):
    """0 <= U_i <= D_i for every analysed task (random sets)."""
    ts = random_taskset(5, util, seed=seed)
    ts = partition(ts, 2)
    analysed = assign_promotions(ts, 2)
    for t in analysed.periodic:
        assert 0 <= t.promotion <= t.deadline
        # W = D - U must be at least C.
        assert t.deadline - t.promotion >= t.wcet
