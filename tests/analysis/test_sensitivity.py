"""Tests for WCET sensitivity analysis."""

import pytest

from repro.analysis.sensitivity import (
    critical_tasks,
    sensitivity_report,
    wcet_scaling_factor,
)
from repro.analysis import assign_promotions, partition, random_taskset
from repro.core.task import PeriodicTask, TaskSet


def task(name, wcet, period, deadline=None, high=0, cpu=0):
    return PeriodicTask(name=name, wcet=wcet, period=period, deadline=deadline,
                        high_priority=high, cpu=cpu)


def test_single_task_scaling_bounded_by_deadline():
    t = task("a", 100, 1_000)
    factor = wcet_scaling_factor(t, [t])
    # Alone, the task can grow until C = D.
    assert factor == pytest.approx(10.0, rel=0.01)


def test_interference_reduces_headroom():
    alone = wcet_scaling_factor(task("lo", 100, 1_000), [task("lo", 100, 1_000)])
    hp = task("hp", 300, 1_000, high=5)
    lo = task("lo", 100, 1_000, high=1)
    crowded = wcet_scaling_factor(lo, [hp, lo])
    assert crowded < alone


def test_zero_headroom_at_full_utilization():
    # Two tasks that exactly fill the deadline: factor ~ 1.
    a = task("a", 500, 1_000, high=2)
    b = task("b", 500, 1_000, high=1)
    factor = wcet_scaling_factor(b, [a, b])
    assert factor == pytest.approx(1.0, abs=0.01)


def test_unschedulable_group_rejected():
    a = task("a", 600, 1_000, high=2)
    b = task("b", 600, 1_000, high=1)
    with pytest.raises(ValueError):
        wcet_scaling_factor(b, [a, b])


def test_scaling_factor_is_safe():
    """Scaling by the reported factor keeps the group schedulable;
    scaling slightly beyond it breaks it."""
    hp = task("hp", 200, 1_000, high=5)
    lo = task("lo", 150, 900, high=1)
    group = [hp, lo]
    factor = wcet_scaling_factor(lo, group)

    from repro.analysis.response_time import response_time_table

    at_factor = [hp, lo._replace(wcet=int(150 * factor), acet=None)]
    assert all(r.schedulable for r in response_time_table(at_factor))
    beyond = [hp, lo._replace(wcet=int(150 * factor) + 10, acet=None)]
    assert not all(r.schedulable for r in response_time_table(beyond))


def test_sensitivity_report_shape():
    ts = random_taskset(6, 1.0, seed=13)
    ts = partition(ts, 2)
    rows = sensitivity_report(ts, 2)
    assert len(rows) == 6
    for row in rows:
        assert row["scaling_factor"] >= 1.0
        assert row["headroom_cycles"] >= 0


def test_critical_tasks_filter():
    a = task("tight", 490, 1_000, high=2)
    b = task("loose", 10, 1_000, high=1)
    ts = TaskSet([a, b])
    critical = critical_tasks(ts, 1, threshold=1.05)
    # 'loose' can grow enormously; 'tight' is near its W+interference cap?
    # With both on one cpu: b after a: W_b = 10 + 490 = 500 <= 1000; both
    # have real headroom, so nothing should be critical at 1.05.
    assert "loose" not in critical


def test_automotive_workload_has_headroom():
    from repro.workloads.automotive import build_automotive_taskset, prepare_taskset

    ts = prepare_taskset(build_automotive_taskset(0.5, 2), 2, tick=5_000_000)
    rows = sensitivity_report(ts, 2)
    # Every task tolerates at least 20 % WCET growth at 50 % utilization.
    assert all(row["scaling_factor"] > 1.2 for row in rows)
