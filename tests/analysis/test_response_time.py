"""Tests for the W_i recurrence and WCRT analysis."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.response_time import (
    busy_period_recurrence,
    higher_priority_tasks,
    response_time_table,
    worst_case_response_time,
)
from repro.core.task import PeriodicTask


def task(name, wcet, period, deadline=None, high=0):
    return PeriodicTask(name=name, wcet=wcet, period=period, deadline=deadline, high_priority=high)


def test_single_task_wcrt_is_wcet():
    t = task("a", 30, 100)
    result = worst_case_response_time(t, [t])
    assert result.schedulable
    assert result.value == 30


def test_classic_two_task_interference():
    # Textbook: hp task C=20 T=50; low task C=30 -> W = 30 + 2*20 = 70? iterate:
    # w1=30 -> ceil(30/50)*20=20 -> w2=50 -> ceil(50/50)*20=20 -> w3=50 stable
    hp = task("hp", 20, 50, high=2)
    lo = task("lo", 30, 200, high=1)
    result = worst_case_response_time(lo, [hp, lo])
    assert result.value == 50


def test_three_task_audsley_example():
    # Audsley-style: C=(3, 3, 5), T=(7, 12, 20) with priorities by rate.
    t1 = task("t1", 3, 7, high=3)
    t2 = task("t2", 3, 12, high=2)
    t3 = task("t3", 5, 20, high=1)
    table = response_time_table([t1, t2, t3])
    values = {r.task: r.wcrt for r in table}
    assert values["t1"] == 3
    assert values["t2"] == 6
    # w=5 -> 5+3+3=11 -> 11+6+3=14? iterate: ceil(11/7)*3=6, ceil(11/12)*3=3 -> 14
    # ceil(14/7)*3=6, ceil(14/12)*3=6 -> 17; ceil(17/7)*3=9, ceil(17/12)*3=6 -> 20
    # exceeds D=20? limit is D: w=20 == D -> ceil(20/7)*3=9, ceil(20/12)*3=6 -> 20 stable
    assert values["t3"] == 20


def test_unschedulable_detected():
    hp = task("hp", 60, 100, high=2)
    lo = task("lo", 50, 100, high=1)
    result = worst_case_response_time(lo, [hp, lo])
    assert not result.schedulable
    assert result.wcrt is None
    with pytest.raises(ValueError):
        _ = result.value


def test_higher_priority_ties_break_by_name():
    a = task("a", 10, 100, high=1)
    b = task("b", 10, 100, high=1)
    assert higher_priority_tasks(a, [a, b]) == [b]
    assert higher_priority_tasks(b, [a, b]) == []


def test_recurrence_validates_inputs():
    with pytest.raises(ValueError):
        busy_period_recurrence(0, [], limit=10)
    with pytest.raises(ValueError):
        busy_period_recurrence(10, [], limit=0)


@settings(max_examples=60, deadline=None)
@given(
    wcets=st.lists(st.integers(1, 50), min_size=1, max_size=5),
    periods=st.lists(st.integers(100, 1000), min_size=5, max_size=5),
)
def test_wcrt_bounds_property(wcets, periods):
    """W_i >= C_i always; W_i == C_i for the highest priority task."""
    tasks = [
        task(f"t{i}", c, p, high=len(wcets) - i)
        for i, (c, p) in enumerate(zip(wcets, periods))
    ]
    table = response_time_table(tasks)
    for t, result in zip(tasks, table):
        if result.schedulable:
            assert result.value >= t.wcet
    top = max(tasks, key=lambda t: t.high_priority)
    top_result = worst_case_response_time(top, tasks)
    assert top_result.value == top.wcet


@settings(max_examples=60, deadline=None)
@given(
    extra=st.integers(1, 30),
    base=st.integers(1, 30),
    period=st.integers(50, 500),
)
def test_wcrt_monotone_in_interference(extra, base, period):
    """Adding a higher-priority task never decreases W_i."""
    lo = task("lo", base, 10_000)
    hp = task("hp", extra, period, high=5)
    alone = worst_case_response_time(lo, [lo])
    with_hp = worst_case_response_time(lo, [lo, hp])
    if with_hp.schedulable:
        assert with_hp.value >= alone.value


@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_wcrt_fixpoint_property(data):
    """The returned W satisfies the recurrence equation exactly."""
    n = data.draw(st.integers(1, 4))
    tasks = []
    for i in range(n):
        c = data.draw(st.integers(1, 20), label=f"c{i}")
        t = data.draw(st.integers(80, 800), label=f"t{i}")
        tasks.append(task(f"t{i}", c, t, high=n - i))
    target = tasks[-1]
    result = worst_case_response_time(target, tasks)
    if result.schedulable:
        hp = higher_priority_tasks(target, tasks)
        expected = target.wcet + sum(
            math.ceil(result.value / other.period) * other.wcet for other in hp
        )
        assert expected == result.value


class TestWarmStartTable:
    """The warm-started table must equal the per-task cold analysis."""

    def check_table_matches_cold(self, tasks):
        table = response_time_table(tasks)
        cold = [worst_case_response_time(t, tasks) for t in tasks]
        assert [(r.task, r.wcrt, r.schedulable) for r in table] == [
            (r.task, r.wcrt, r.schedulable) for r in cold
        ]

    def test_identical_on_audsley_example(self):
        self.check_table_matches_cold([
            task("t1", 3, 7, high=3),
            task("t2", 3, 12, high=2),
            task("t3", 5, 20, high=1),
        ])

    def test_identical_with_unschedulable_task_mid_chain(self):
        # "mid" diverges (tight deadline); the chain must recover and
        # still warm-start "lo" from the last *converged* W.
        self.check_table_matches_cold([
            task("hp", 20, 50, high=3),
            task("mid", 40, 200, deadline=45, high=2),
            task("lo", 10, 400, high=1),
        ])

    def test_identical_under_arbitrary_input_order(self):
        tasks = [
            task("t3", 5, 20, high=1),
            task("t1", 3, 7, high=3),
            task("t2", 3, 12, high=2),
        ]
        self.check_table_matches_cold(tasks)
        assert [r.task for r in response_time_table(tasks)] == [
            "t3", "t1", "t2"
        ]

    def test_warm_start_skips_ramp_up_iterations(self):
        # High utilization: the cold recurrence crawls up from zero;
        # warm-started table entries must converge in fewer steps.
        tasks = [
            task("a", 9, 30, high=3),
            task("b", 9, 31, high=2),
            task("c", 9, 100, high=1),
        ]
        table = {r.task: r for r in response_time_table(tasks)}
        cold = worst_case_response_time(tasks[-1], tasks)
        assert table["c"].wcrt == cold.wcrt
        assert table["c"].iterations <= cold.iterations

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_identical_tables_property(self, data):
        n = data.draw(st.integers(1, 6))
        tasks = []
        for i in range(n):
            c = data.draw(st.integers(1, 40), label=f"c{i}")
            p = data.draw(st.integers(60, 900), label=f"p{i}")
            d = data.draw(
                st.one_of(st.none(), st.integers(40, p)), label=f"d{i}"
            )
            tasks.append(task(f"t{i}", c, p, deadline=d, high=n - i))
        self.check_table_matches_cold(tasks)

    def test_recurrence_rejects_negative_warm_start(self):
        with pytest.raises(ValueError):
            busy_period_recurrence(10, [], limit=100, w0=-1)


class TestDivergenceGuard:
    def test_guard_raises_clear_diagnostic(self):
        """At utilization >= 1 with a huge limit, the recurrence must not
        spin: the max_iterations guard raises RecurrenceDivergenceError
        naming the interferer utilization."""
        from repro.analysis.response_time import RecurrenceDivergenceError

        hog = task("hog", 1, 1, high=5)
        with pytest.raises(RecurrenceDivergenceError) as excinfo:
            busy_period_recurrence(1, [hog], limit=10**12, max_iterations=50)
        message = str(excinfo.value)
        assert "50 iterations" in message
        assert "utilization" in message

    def test_guard_not_triggered_by_convergent_sets(self):
        hp = task("hp", 20, 50, high=2)
        result = busy_period_recurrence(30, [hp], limit=200, max_iterations=10)
        assert result.schedulable and result.wcrt == 50

    def test_limit_exceeded_still_reports_unschedulable(self):
        """A diverging recurrence with a tight limit is 'unschedulable',
        not an exception -- the guard only fires past max_iterations."""
        hog = task("hog", 1, 1, high=5)
        result = busy_period_recurrence(1, [hog], limit=100)
        assert not result.schedulable
