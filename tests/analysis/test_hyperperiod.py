"""Tests for hyperperiod verification and the RTA extensions."""

import pytest

from repro.analysis import assign_promotions, partition, random_taskset
from repro.analysis.hyperperiod import cross_check, verify_by_simulation
from repro.analysis.response_time import busy_period_recurrence
from repro.core.task import PeriodicTask, TaskSet

TICK = 10_000


def analysed(tasks, n_cpus=1):
    ts = TaskSet(tasks).with_deadline_monotonic_priorities()
    ts = partition(ts, n_cpus)
    return assign_promotions(ts, n_cpus, tick=TICK)


class TestVerifyBySimulation:
    def test_simple_set_verified(self):
        ts = analysed([
            PeriodicTask(name="a", wcet=10_000, period=100_000),
            PeriodicTask(name="b", wcet=20_000, period=200_000),
        ])
        result = verify_by_simulation(ts, 1, tick=TICK)
        assert result.schedulable
        assert bool(result)
        assert result.misses == []
        assert result.jobs_checked >= 3
        assert 0 < result.worst_response_ratio <= 1.0

    def test_horizon_covers_hyperperiod_plus_deadline(self):
        ts = analysed([
            PeriodicTask(name="a", wcet=1_000, period=60_000),
            PeriodicTask(name="b", wcet=1_000, period=40_000),
        ])
        result = verify_by_simulation(ts, 1, tick=TICK)
        assert result.horizon == 120_000 + 60_000

    def test_huge_hyperperiod_rejected(self):
        ts = analysed([
            PeriodicTask(name="a", wcet=10, period=999_983),  # prime
            PeriodicTask(name="b", wcet=10, period=999_979),  # prime
        ])
        with pytest.raises(ValueError):
            verify_by_simulation(ts, 1, tick=TICK, max_horizon=10_000_000)

    def test_multi_hyperperiod(self):
        ts = analysed([PeriodicTask(name="a", wcet=10_000, period=100_000)])
        result = verify_by_simulation(ts, 1, tick=TICK, hyperperiods=3)
        assert result.horizon == 400_000
        assert result.schedulable

    def test_invalid_hyperperiods(self):
        ts = analysed([PeriodicTask(name="a", wcet=10_000, period=100_000)])
        with pytest.raises(ValueError):
            verify_by_simulation(ts, 1, tick=TICK, hyperperiods=0)


class TestCrossCheck:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_analysis_never_contradicted_by_simulation(self, seed):
        """The safety property: analytical 'schedulable' must never be
        refuted by exact simulation."""
        base = random_taskset(
            4, 0.8, seed=seed, min_period=20_000, max_period=100_000,
        )
        # Round periods to tick multiples for an exact cross-check.
        rounded = [
            PeriodicTask(
                name=t.name, wcet=t.wcet,
                period=max(TICK, (t.period // TICK) * TICK),
                low_priority=t.low_priority, high_priority=t.high_priority,
            )
            for t in base.periodic
        ]
        ts = analysed(rounded, n_cpus=2)
        verdict = cross_check(ts, 2, tick=TICK, max_horizon=2_000_000_000)
        assert verdict is True  # these sets are schedulable and verified


class TestRTAExtensions:
    def _hp(self, wcet, period, name="hp"):
        return PeriodicTask(name=name, wcet=wcet, period=period, high_priority=5)

    def test_blocking_adds_directly(self):
        plain = busy_period_recurrence(30, [self._hp(20, 100)], limit=1_000)
        blocked = busy_period_recurrence(
            30, [self._hp(20, 100)], limit=1_000, blocking=15
        )
        assert blocked.value == plain.value + 15

    def test_blocking_can_break_schedulability(self):
        result = busy_period_recurrence(
            50, [self._hp(40, 100)], limit=100, blocking=20
        )
        assert not result.schedulable

    def test_jitter_adds_interference_hits(self):
        # Without jitter: w = 30 + ceil(w/100)*20 -> 50.
        plain = busy_period_recurrence(30, [self._hp(20, 100)], limit=1_000)
        assert plain.value == 50
        # Jitter 60: ceil((50+60)/100) = 2 hits -> w = 70;
        # ceil((70+60)/100) = 2 -> stable at 70.
        jittered = busy_period_recurrence(
            30, [self._hp(20, 100)], limit=1_000, jitter={"hp": 60}
        )
        assert jittered.value == 70

    def test_jitter_validation(self):
        with pytest.raises(ValueError):
            busy_period_recurrence(10, [], limit=100, jitter={"x": -1})
        with pytest.raises(ValueError):
            busy_period_recurrence(10, [], limit=100, blocking=-1)

    def test_zero_jitter_is_identity(self):
        hp = self._hp(20, 100)
        plain = busy_period_recurrence(30, [hp], limit=1_000)
        zeroed = busy_period_recurrence(30, [hp], limit=1_000, jitter={"hp": 0})
        assert plain.value == zeroed.value
