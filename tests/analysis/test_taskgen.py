"""Tests for the synthetic task-set generators."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.taskgen import (
    poisson_arrivals,
    random_periods,
    random_taskset,
    uunifast,
)


def test_uunifast_sums_to_target():
    rng = random.Random(42)
    for n in (1, 2, 5, 20):
        utils = uunifast(n, 1.5, rng)
        assert len(utils) == n
        assert sum(utils) == pytest.approx(1.5)
        assert all(u >= 0 for u in utils)


def test_uunifast_validates():
    rng = random.Random(0)
    with pytest.raises(ValueError):
        uunifast(0, 1.0, rng)
    with pytest.raises(ValueError):
        uunifast(3, -1.0, rng)


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(0, 100_000), n=st.integers(1, 12), total=st.floats(0.1, 3.0))
def test_uunifast_property(seed, n, total):
    utils = uunifast(n, total, random.Random(seed))
    assert sum(utils) == pytest.approx(total, rel=1e-9)
    assert all(u >= 0 for u in utils)


def test_random_periods_within_bounds_and_granular():
    rng = random.Random(7)
    periods = random_periods(50, rng, minimum=10_000, maximum=100_000, granularity=500)
    assert all(p % 500 == 0 for p in periods)
    assert all(500 <= p <= 100_500 for p in periods)


def test_random_periods_validate():
    with pytest.raises(ValueError):
        random_periods(5, random.Random(0), minimum=0)


def test_random_taskset_is_reproducible():
    a = random_taskset(6, 0.8, seed=99)
    b = random_taskset(6, 0.8, seed=99)
    assert [(t.name, t.wcet, t.period) for t in a.periodic] == [
        (t.name, t.wcet, t.period) for t in b.periodic
    ]


def test_random_taskset_utilization_close_to_target():
    ts = random_taskset(10, 1.0, seed=5)
    assert ts.utilization == pytest.approx(1.0, abs=0.05)


def test_random_taskset_constrained_deadlines():
    ts = random_taskset(8, 0.8, seed=3, deadline_factor=0.7)
    for t in ts.periodic:
        assert t.wcet <= t.deadline <= t.period


def test_random_taskset_invalid_deadline_factor():
    with pytest.raises(ValueError):
        random_taskset(4, 0.5, seed=1, deadline_factor=1.5)


def test_random_taskset_aperiodics():
    ts = random_taskset(4, 0.5, seed=1, n_aperiodic=3, aperiodic_wcet=777)
    assert len(ts.aperiodic) == 3
    assert all(t.wcet == 777 for t in ts.aperiodic)


def test_poisson_arrivals_sorted_within_horizon():
    arrivals = poisson_arrivals(1 / 1000, horizon=100_000, rng=random.Random(1))
    assert arrivals == sorted(arrivals)
    assert all(0 <= a < 100_000 for a in arrivals)
    # Expect roughly horizon * rate arrivals.
    assert 50 <= len(arrivals) <= 170


def test_poisson_rate_validation():
    with pytest.raises(ValueError):
        poisson_arrivals(0, 100, random.Random(0))
