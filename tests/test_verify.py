"""repro-verify: gate aggregation and exit-code semantics."""

import pytest

from repro import verify


@pytest.fixture
def gates(monkeypatch):
    """Replace the real self-checks with fast fakes; record invocations."""
    calls = []

    def fake(name, code):
        def runner(out=None):
            calls.append(name)
            return code
        return runner

    checks = {"lint": fake("lint", 0), "perf": fake("perf", 0),
              "obs": fake("obs", 0), "faults": fake("faults", 0)}
    monkeypatch.setattr(verify, "CHECKS", checks)
    return calls, checks


def test_all_gates_pass(gates, monkeypatch, capsys):
    calls, _ = gates
    monkeypatch.setattr(verify, "run_tier1", lambda **kw: 0)
    assert verify.main([]) == 0
    assert calls == ["lint", "perf", "obs", "faults"]
    out = capsys.readouterr().out
    assert "verify: PASS" in out and "tier1" in out


def test_tier1_failure_fails_the_run(gates, monkeypatch, capsys):
    monkeypatch.setattr(verify, "run_tier1", lambda **kw: 2)
    assert verify.main([]) == 1
    assert "verify: FAIL" in capsys.readouterr().out


def test_any_self_check_failure_fails_the_run(gates, monkeypatch, capsys):
    calls, checks = gates
    checks["obs"] = lambda out=None: 1
    monkeypatch.setattr(verify, "run_tier1", lambda **kw: 0)
    assert verify.main([]) == 1
    out = capsys.readouterr().out
    assert "FAIL" in out and "obs" in out
    # A failing gate must not stop the later ones from running.
    assert "faults" in calls


def test_skip_tier1_runs_only_self_checks(gates, monkeypatch):
    calls, _ = gates
    monkeypatch.setattr(verify, "run_tier1",
                        lambda **kw: pytest.fail("tier1 must not run"))
    assert verify.main(["--skip-tier1"]) == 0
    assert calls == ["lint", "perf", "obs", "faults"]


def test_only_selects_a_subset_and_skips_tier1(gates, monkeypatch):
    calls, _ = gates
    monkeypatch.setattr(verify, "run_tier1",
                        lambda **kw: pytest.fail("tier1 must not run"))
    assert verify.main(["--only", "perf", "obs"]) == 0
    assert calls == ["perf", "obs"]


def test_list_mode_runs_nothing(gates, capsys):
    calls, _ = gates
    assert verify.main(["--list"]) == 0
    assert calls == []
    out = capsys.readouterr().out
    assert "tier1" in out and "faults" in out


def test_unknown_check_rejected(gates):
    with pytest.raises(SystemExit):
        verify.main(["--only", "nope"])


def test_run_tier1_builds_pythonpath(monkeypatch, tmp_path):
    recorded = {}

    class Completed:
        returncode = 0

    def fake_run(command, cwd=None, env=None):
        recorded.update(command=command, cwd=cwd, env=env)
        return Completed()

    monkeypatch.setattr(verify.subprocess, "run", fake_run)
    monkeypatch.delenv("PYTHONPATH", raising=False)
    assert verify.run_tier1(pytest_args=["-x"], repo_root=str(tmp_path)) == 0
    assert recorded["command"][-1] == "-x"
    assert recorded["cwd"] == str(tmp_path)
    assert recorded["env"]["PYTHONPATH"] == str(tmp_path / "src")
