"""Tests for the theoretical MPDP simulator."""

import pytest

from repro.analysis import assign_promotions, partition, random_taskset
from repro.core.task import AperiodicTask, PeriodicTask, TaskSet
from repro.simulators.theoretical import TheoreticalSimulator
from repro.trace import TraceRecorder, compute_metrics

TICK = 10_000


def analysed(tasks, aperiodic=(), n_cpus=2):
    ts = TaskSet(tasks, aperiodic).with_deadline_monotonic_priorities()
    ts = partition(ts, n_cpus)
    return assign_promotions(ts, n_cpus, tick=TICK)


def ptask(name, wcet, period, deadline=None):
    return PeriodicTask(name=name, wcet=wcet, period=period, deadline=deadline)


def test_zero_overhead_single_task_exact():
    ts = analysed([ptask("a", 3_000, 50_000)], n_cpus=1)
    sim = TheoreticalSimulator(ts, 1, tick=TICK, overhead=0.0)
    finished = sim.run(200_000)
    assert [j.finish_time for j in finished] == [3_000, 53_000, 103_000, 153_000]


def test_overhead_inflates_execution():
    ts = analysed([ptask("a", 10_000, 100_000)], n_cpus=1)
    sim = TheoreticalSimulator(ts, 1, tick=TICK, overhead=0.02)
    finished = sim.run(100_000)
    assert finished[0].finish_time == 10_200


def test_releases_quantised_to_ticks():
    # Offset tasks release mid-tick; the simulator must hold them to the
    # next scheduling cycle, like the prototype kernel.
    task = PeriodicTask(name="a", wcet=1_000, period=100_000, offset=15_000, promotion=0)
    ts = TaskSet([task])
    sim = TheoreticalSimulator(ts, 1, tick=TICK, overhead=0.0)
    finished = sim.run(120_000)
    assert finished[0].start_time == 20_000  # next tick after 15 000


def test_aperiodic_served_in_slack():
    ts = analysed(
        [ptask("p", 20_000, 100_000)],
        aperiodic=[AperiodicTask(name="a", wcet=5_000)],
        n_cpus=2,
    )
    sim = TheoreticalSimulator(
        ts, 2, tick=TICK, overhead=0.0, aperiodic_arrivals={"a": [30_000]}
    )
    sim.run(200_000)
    aper = next(j for j in sim.finished_jobs if j.task.name == "a")
    # A free cpu exists: response == execution time.
    assert aper.response_time == 5_000


def test_aperiodic_beats_unpromoted_periodic_on_busy_system():
    ts = analysed(
        [ptask("p1", 60_000, 200_000), ptask("p2", 60_000, 200_000)],
        aperiodic=[AperiodicTask(name="a", wcet=10_000)],
        n_cpus=2,
    )
    sim = TheoreticalSimulator(
        ts, 2, tick=TICK, overhead=0.0, aperiodic_arrivals={"a": [10_000]}
    )
    sim.run(400_000)
    aper = next(j for j in sim.finished_jobs if j.task.name == "a")
    # Both cpus busy with unpromoted periodics: the arrival itself is a
    # scheduling point, so the aperiodic preempts immediately.
    assert aper.response_time == 10_000


def test_unknown_aperiodic_name_rejected():
    ts = analysed([ptask("p", 1_000, 50_000)])
    with pytest.raises(KeyError):
        TheoreticalSimulator(ts, 2, tick=TICK, aperiodic_arrivals={"nope": [5]})


def test_periodic_name_as_aperiodic_rejected():
    ts = analysed([ptask("p", 1_000, 50_000)])
    with pytest.raises(TypeError):
        TheoreticalSimulator(ts, 2, tick=TICK, aperiodic_arrivals={"p": [5]})


def test_validation():
    ts = analysed([ptask("p", 1_000, 50_000)])
    with pytest.raises(ValueError):
        TheoreticalSimulator(ts, 2, tick=0)
    with pytest.raises(ValueError):
        TheoreticalSimulator(ts, 2, tick=TICK, overhead=-0.1)


def test_no_misses_on_random_schedulable_sets():
    for seed in (3, 4, 5):
        ts = random_taskset(6, 1.0, seed=seed, min_period=50_000, max_period=300_000)
        ts = partition(ts, 2)
        ts = assign_promotions(ts, 2, tick=TICK)
        sim = TheoreticalSimulator(ts, 2, tick=TICK, overhead=0.0)
        sim.run(1_500_000)
        assert not [j for j in sim.finished_jobs if j.missed_deadline]


def test_trace_records_lifecycle():
    trace = TraceRecorder()
    ts = analysed([ptask("a", 5_000, 50_000)], n_cpus=1)
    sim = TheoreticalSimulator(ts, 1, tick=TICK, overhead=0.0, trace=trace)
    sim.run(100_000)
    assert trace.of_kind("release")
    assert trace.of_kind("dispatch")
    assert trace.of_kind("finish")
    assert trace.of_kind("tick")


def test_stats():
    ts = analysed([ptask("a", 5_000, 50_000)], n_cpus=1)
    sim = TheoreticalSimulator(ts, 1, tick=TICK)
    sim.run(100_000)
    stats = sim.stats()
    assert stats["scheduling_cycles"] == 10
    assert stats["context_switches"] >= 2
