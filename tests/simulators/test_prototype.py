"""Tests for the prototype simulator wrapper and workload scaling."""

import pytest

from repro.analysis import assign_promotions, partition
from repro.core.task import AperiodicTask, PeriodicTask, TaskSet
from repro.kernel.microkernel import TaskBinding
from repro.simulators.prototype import (
    PrototypeConfig,
    PrototypeSimulator,
    scale_taskset,
)
from repro.simulators.theoretical import TheoreticalSimulator
from repro.trace import compute_metrics


def analysed(n_cpus=2, tick=100_000):
    ts = TaskSet(
        [
            PeriodicTask(name="a", wcet=400_000, period=4_000_000),
            PeriodicTask(name="b", wcet=600_000, period=6_000_000),
        ],
        [AperiodicTask(name="evt", wcet=500_000)],
    ).with_deadline_monotonic_priorities()
    ts = partition(ts, n_cpus)
    return assign_promotions(ts, n_cpus, tick=tick)


class TestScaleTaskset:
    def test_scale_one_is_identity(self):
        ts = analysed()
        assert scale_taskset(ts, 1) is ts

    def test_scale_divides_every_time(self):
        ts = analysed()
        scaled = scale_taskset(ts, 100)
        a = scaled.by_name("a")
        assert a.wcet == 4_000
        assert a.period == 40_000
        assert a.promotion == ts.by_name("a").promotion // 100
        assert scaled.by_name("evt").wcet == 5_000

    def test_scale_preserves_utilization(self):
        ts = analysed()
        scaled = scale_taskset(ts, 100)
        assert scaled.utilization == pytest.approx(ts.utilization, rel=0.01)

    def test_too_small_wcet_rejected(self):
        ts = TaskSet([PeriodicTask(name="x", wcet=10, period=1000, promotion=0)])
        with pytest.raises(ValueError):
            scale_taskset(ts, 100)


class TestPrototypeConfig:
    def test_tick_divisibility_enforced(self):
        with pytest.raises(ValueError):
            PrototypeConfig(tick=5_000_000, scale=256)

    def test_scale_minimum(self):
        with pytest.raises(ValueError):
            PrototypeConfig(scale=0)


class TestPrototypeSimulator:
    def test_runs_and_reports_full_scale(self):
        ts = analysed(tick=100_000)
        proto = PrototypeSimulator(
            ts,
            PrototypeConfig(n_cpus=2, tick=100_000, scale=10),
            aperiodic_arrivals={"evt": [1_000_000]},
        )
        proto.run(12_000_000)
        metrics = compute_metrics(proto.finished_jobs, 12_000_000 // 10)
        assert metrics.finished_jobs > 3
        evt = metrics.response_of("evt")
        full = proto.to_full_scale(int(evt.mean))
        # Response at full scale near the 500k execution time.
        assert 500_000 <= full <= 1_200_000

    def test_no_deadline_misses(self):
        ts = analysed(tick=100_000)
        proto = PrototypeSimulator(ts, PrototypeConfig(n_cpus=2, tick=100_000, scale=10))
        proto.run(12_000_000)
        assert not [j for j in proto.finished_jobs if j.missed_deadline]

    def test_prototype_slower_than_theoretical(self):
        """The paper's headline comparison, in miniature."""
        ts = analysed(tick=100_000)
        arrivals = {"evt": [1_000_000]}
        theo = TheoreticalSimulator(ts, 2, tick=100_000, overhead=0.02,
                                    aperiodic_arrivals=arrivals)
        theo.run(12_000_000)
        theo_resp = compute_metrics(theo.finished_jobs, 12_000_000).response_of("evt").mean

        proto = PrototypeSimulator(
            ts, PrototypeConfig(n_cpus=2, tick=100_000, scale=10),
            bindings={"evt": TaskBinding()},
            aperiodic_arrivals=arrivals,
        )
        proto.run(12_000_000)
        proto_resp = proto.to_full_scale(
            int(compute_metrics(proto.finished_jobs, 1_200_000).response_of("evt").mean)
        )
        assert proto_resp > theo_resp * 0.98  # at least comparable; usually above

    def test_explicit_task_arrivals_honoured(self):
        ts = TaskSet(
            [PeriodicTask(name="a", wcet=100_000, period=1_000_000, promotion=0)],
            [AperiodicTask(name="evt", wcet=50_000, arrivals=(500_000,))],
        )
        proto = PrototypeSimulator(ts, PrototypeConfig(n_cpus=1, tick=100_000, scale=10))
        proto.run(2_000_000)
        evt = [j for j in proto.finished_jobs if j.task.name == "evt"]
        assert len(evt) == 1
