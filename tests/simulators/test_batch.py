"""Tests for the replication/statistics framework."""

import math

import pytest

from repro.simulators.batch import (
    ReplicationSummary,
    compare,
    replicate,
    t_critical_95,
)


def test_t_critical_values():
    assert t_critical_95(1) == pytest.approx(12.706)
    assert t_critical_95(10) == pytest.approx(2.228)
    assert t_critical_95(100) == pytest.approx(1.96)
    with pytest.raises(ValueError):
        t_critical_95(0)


def test_replicate_runs_each_seed():
    seen = []
    summary = replicate("sq", lambda seed: (seen.append(seed), seed * seed)[1], 5)
    assert seen == [0, 1, 2, 3, 4]
    assert summary.samples == [0.0, 1.0, 4.0, 9.0, 16.0]
    assert summary.mean == 6.0


def test_explicit_seeds():
    summary = replicate("x", float, 3, seeds=[10, 20, 30])
    assert summary.samples == [10.0, 20.0, 30.0]
    with pytest.raises(ValueError):
        replicate("x", float, 3, seeds=[1, 2])


def test_confidence_interval_shrinks_with_n():
    wide = replicate("w", lambda s: float(s % 2), 4)
    narrow = replicate("n", lambda s: float(s % 2), 30)
    assert narrow.half_width_95 < wide.half_width_95


def test_interval_contains_mean():
    summary = replicate("c", lambda s: 10.0 + (s % 3), 9)
    lo, hi = summary.interval_95
    assert lo <= summary.mean <= hi


def test_degenerate_cases():
    one = ReplicationSummary("one", [5.0])
    assert one.stdev == 0.0
    assert math.isinf(ReplicationSummary("none", []).half_width_95) is False or True
    with pytest.raises(ValueError):
        _ = ReplicationSummary("none", []).mean


def test_format_contains_statistics():
    summary = replicate("fmt", lambda s: float(s), 5)
    text = summary.format(unit=" s")
    assert "fmt" in text and "n=5" in text and "CI" in text


def test_compare_detects_clear_difference():
    a = ReplicationSummary("a", [10.0, 10.1, 9.9, 10.05, 9.95])
    b = ReplicationSummary("b", [20.0, 20.2, 19.8, 20.1, 19.9])
    result = compare(a, b)
    assert result["difference"] == pytest.approx(-10.0, abs=0.2)
    assert result["significant"]


def test_compare_overlapping_means_not_significant():
    a = ReplicationSummary("a", [10.0, 12.0, 8.0, 11.0, 9.0])
    b = ReplicationSummary("b", [10.5, 11.5, 8.5, 10.0, 9.5])
    result = compare(a, b)
    assert not result["significant"]


def test_compare_needs_samples():
    with pytest.raises(ValueError):
        compare(ReplicationSummary("a", [1.0]), ReplicationSummary("b", [1.0, 2.0]))


def test_replication_validation():
    with pytest.raises(ValueError):
        replicate("x", float, 0)
