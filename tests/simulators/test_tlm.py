"""Tests for the transaction-level (TLM) middle-fidelity rung.

The accuracy contract: on the Figure-4 anchor cells the TLM backend
must reach the *same schedulability verdict* as the cycle-approximate
prototype, with per-task worst-case response times within the
calibrated tolerance.
"""

import pytest

from repro import TICK
from repro.hw.bus import analytic_txn_wait, analytic_txn_waits
from repro.simulators.tlm import (
    ANCHOR_CELLS,
    DEFAULT_COST_TABLE,
    TLMCostTable,
    TLMSimulator,
    anchor_prototype_reference,
    anchor_tlm_run,
    per_task_wcrt,
)
from repro.trace.recorder import TraceRecorder
from repro.workloads.automotive import (
    AUTOMOTIVE_APERIODIC,
    automotive_bindings,
    build_automotive_taskset,
    prepare_taskset,
)

#: Accuracy bound for the WCRT cross-checks below.  This is not a
#: magic number: it is the *calibration residual* -- the maximum
#: relative per-task WCRT deviation the fitted cost table showed
#: against the prototype over the anchor cells when
#: ``repro-perf calibrate-tlm`` produced :data:`DEFAULT_COST_TABLE`.
WCRT_TOLERANCE = DEFAULT_COST_TABLE.residual


def _small_tlm(n_cpus=2, utilization=0.40, **kwargs):
    from repro import CLOCK_HZ

    taskset = prepare_taskset(
        build_automotive_taskset(utilization, n_cpus), n_cpus, tick=TICK
    )
    arrival = int(1.0 * CLOCK_HZ)
    sim = TLMSimulator(
        taskset,
        n_cpus,
        tick=TICK,
        bindings=automotive_bindings(),
        aperiodic_arrivals={AUTOMOTIVE_APERIODIC: [arrival]},
        **kwargs,
    )
    horizon = arrival + int(17.0 * CLOCK_HZ)
    return sim, horizon


class TestCostTable:
    def test_validation(self):
        with pytest.raises(ValueError):
            TLMCostTable(wait_gain=-1.0)
        with pytest.raises(ValueError):
            TLMCostTable(base_overhead=-0.1)
        with pytest.raises(ValueError):
            TLMCostTable(priority_skew=1.5)
        with pytest.raises(ValueError):
            TLMCostTable(residual=-0.1)

    def test_default_is_calibrated(self):
        # The shipped table must carry a fitted (finite, sub-100 %)
        # residual, not the unit-cost placeholder of a fresh table.
        assert 0.0 < DEFAULT_COST_TABLE.residual < 1.0

    def test_round_trip(self):
        table = TLMCostTable(wait_gain=0.5, base_overhead=0.01,
                             priority_skew=0.25, residual=0.1)
        assert TLMCostTable(**table.to_dict()) == table


class TestAnalyticWaits:
    SHARES = [0.42, 0.0, 0.17, 0.63]
    LATENCIES = [21.0, 0.0, 9.0, 33.0]

    @pytest.mark.parametrize("gain,skew", [(1.0, 0.0), (0.8, 0.75), (2.0, 0.5)])
    def test_vectorised_matches_scalar(self, gain, skew):
        """The one-pass vector form is the scalar evaluated per master
        (up to last-ulp differences from subtraction vs direct sum)."""
        waits = analytic_txn_waits(self.SHARES, self.LATENCIES,
                                   gain=gain, skew=skew)
        for master in range(len(self.SHARES)):
            expected = analytic_txn_wait(self.SHARES, self.LATENCIES,
                                         master, gain=gain, skew=skew)
            assert waits[master] == pytest.approx(expected, rel=1e-9)

    def test_idle_master_still_waits_on_others(self):
        # An idle master arriving at a loaded bus still queues.
        waits = analytic_txn_waits(self.SHARES, self.LATENCIES)
        assert waits[1] > 0.0

    def test_single_active_master_no_self_wait(self):
        # The lone active master never waits on itself; the idle one
        # would still queue behind it on arrival.
        waits = analytic_txn_waits([0.5, 0.0], [10.0, 0.0])
        assert waits[0] == 0.0
        assert waits[1] > 0.0
        assert analytic_txn_waits([0.5], [10.0]) == [0.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            analytic_txn_waits([0.5], [10.0], gain=-1.0)
        with pytest.raises(ValueError):
            analytic_txn_waits([0.5], [10.0], skew=2.0)


class TestAnchorAccuracy:
    """The tentpole contract, one anchor cell per processor count."""

    @pytest.mark.parametrize("cell", ANCHOR_CELLS,
                             ids=[f"{n}P-{u:.0%}" for n, u in ANCHOR_CELLS])
    def test_verdict_and_wcrt_match_prototype(self, cell):
        reference = anchor_prototype_reference(*cell)
        result = anchor_tlm_run(*cell)
        # Identical schedulability verdict.
        assert (result["misses"] == 0) == (reference["misses"] == 0)
        # Per-task WCRT within the calibrated tolerance.
        for name, ref_wcrt in reference["wcrt"].items():
            if ref_wcrt <= 0 or name not in result["wcrt"]:
                continue
            deviation = abs(result["wcrt"][name] - ref_wcrt) / ref_wcrt
            assert deviation <= WCRT_TOLERANCE, (
                f"{name}: TLM WCRT {result['wcrt'][name]} vs prototype "
                f"{ref_wcrt} deviates {deviation:.1%} > {WCRT_TOLERANCE:.1%}"
            )


class TestDeterminism:
    def test_bit_for_bit_repeatable(self):
        """Same config => identical schedule: traces, WCRTs, stats."""
        outcomes = []
        for _ in range(2):
            trace = TraceRecorder()
            sim, horizon = _small_tlm(trace=trace)
            sim.run(horizon)
            outcomes.append(
                (
                    tuple(trace.events),
                    per_task_wcrt(sim.finished_jobs),
                    sim.stats(),
                )
            )
        assert outcomes[0] == outcomes[1]

    def test_trace_disabled_same_schedule(self):
        """Tracing must be observation only -- disabling it cannot
        change a single finish instant."""
        sim_on, horizon = _small_tlm(trace=TraceRecorder())
        sim_on.run(horizon)
        sim_off, _ = _small_tlm()
        sim_off.run(horizon)
        on = [(j.name, j.release, j.finish_time) for j in sim_on.finished_jobs]
        off = [(j.name, j.release, j.finish_time) for j in sim_off.finished_jobs]
        assert on == off


class TestSimulatorSurface:
    def test_runs_and_finishes_jobs(self):
        sim, horizon = _small_tlm()
        finished = sim.run(horizon)
        assert finished
        assert all(j.finish_time is not None for j in finished)
        stats = sim.stats()
        assert stats["tlm_transactions"] > 0
        assert stats["context_switches"] > 0

    def test_metrics_emission(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        sim, horizon = _small_tlm(metrics=registry)
        sim.run(horizon)
        snapshot = registry.snapshot()
        assert snapshot["tlm_transactions_total"]["series"][0]["value"] > 0
        assert (
            snapshot["tlm_calibration_residual"]["series"][0]["value"]
            == DEFAULT_COST_TABLE.residual
        )

    def test_tlm_block_trace_vocabulary(self):
        trace = TraceRecorder()
        sim, horizon = _small_tlm(trace=trace)
        sim.run(horizon)
        blocks = [e for e in trace.events if e.kind == "tlm_block"]
        assert blocks
        # Every timed block is annotated with its contention stretch.
        assert all("stretch=" in (e.info or "") for e in blocks)

    def test_rejects_bad_tick(self):
        taskset = prepare_taskset(
            build_automotive_taskset(0.40, 2), 2, tick=TICK
        )
        with pytest.raises(ValueError):
            TLMSimulator(taskset, 2, tick=0)
