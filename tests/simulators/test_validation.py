"""Tests for the side-by-side validation module."""

import pytest

from repro.analysis import assign_promotions, partition
from repro.core.task import AperiodicTask, PeriodicTask, TaskSet
from repro.simulators.validation import TaskComparison, validate

TICK = 100_000


@pytest.fixture(scope="module")
def result():
    ts = TaskSet(
        [
            PeriodicTask(name="a", wcet=200_000, period=2_000_000),
            PeriodicTask(name="b", wcet=300_000, period=3_000_000),
        ],
        [AperiodicTask(name="evt", wcet=400_000)],
    ).with_deadline_monotonic_priorities()
    ts = assign_promotions(partition(ts, 2), 2, tick=TICK)
    return validate(
        ts, 2, tick=TICK, horizon=12_000_000, scale=10,
        aperiodic_arrivals={"evt": [1_000_000]},
    )


def test_all_tasks_compared(result):
    names = {c.task for c in result.comparisons}
    assert names == {"a", "b", "evt"}


def test_no_misses_either_side(result):
    assert result.theoretical_misses == 0
    assert result.prototype_misses == 0


def test_prototype_not_faster_by_much(result):
    # The prototype includes hardware overheads; the theoretical side
    # includes a 2% inflation.  Per-task means must stay in the same
    # ballpark with the prototype generally the slower one.
    for comparison in result.comparisons:
        assert comparison.prototype_mean > 0.8 * comparison.theoretical_mean


def test_by_task_lookup(result):
    assert result.by_task("evt").is_periodic is False
    with pytest.raises(KeyError):
        result.by_task("ghost")


def test_worst_periodic_slowdown(result):
    worst = result.worst_periodic_slowdown()
    assert worst is not None
    assert worst.is_periodic


def test_format_renders(result):
    text = result.format()
    assert "evt" in text
    assert "misses:" in text


def test_comparison_math():
    comparison = TaskComparison(
        task="x", is_periodic=True,
        theoretical_mean=100.0, prototype_mean=110.0,
        jobs_theoretical=5, jobs_prototype=5,
    )
    assert comparison.slowdown_pct == pytest.approx(10.0)
