"""Tests for the baseline schedulers."""

import pytest

from repro.analysis import assign_promotions, partition, random_taskset
from repro.core.task import AperiodicTask, PeriodicTask, TaskSet
from repro.simulators.baselines import (
    GlobalEDFPolicy,
    GlobalFixedPriorityPolicy,
    MultiprocessorSimulator,
    PartitionedFixedPriorityPolicy,
)
from repro.simulators.theoretical import TheoreticalSimulator
from repro.trace import compute_metrics


def ptask(name, wcet, period, deadline=None, high=0, cpu=0):
    return PeriodicTask(
        name=name, wcet=wcet, period=period, deadline=deadline,
        high_priority=high, cpu=cpu,
    )


def test_partitioned_fp_respects_pinning():
    ts = TaskSet([
        ptask("a", 30_000, 100_000, high=2, cpu=0),
        ptask("b", 30_000, 100_000, high=1, cpu=0),
    ])
    sim = MultiprocessorSimulator(ts, 2, PartitionedFixedPriorityPolicy())
    sim.run(100_000)
    # Both pinned to cpu0: they serialise even though cpu1 idles.
    a = next(j for j in sim.finished if j.task.name == "a")
    b = next(j for j in sim.finished if j.task.name == "b")
    assert a.finish_time == 30_000
    assert b.finish_time == 60_000
    assert all(j.cpu is None or j.cpu == 0 for j in sim.finished)


def test_global_fp_uses_all_cpus():
    ts = TaskSet([
        ptask("a", 30_000, 100_000, high=2, cpu=0),
        ptask("b", 30_000, 100_000, high=1, cpu=0),
    ])
    sim = MultiprocessorSimulator(ts, 2, GlobalFixedPriorityPolicy())
    sim.run(100_000)
    finishes = sorted(j.finish_time for j in sim.finished)
    assert finishes == [30_000, 30_000]


def test_global_edf_orders_by_deadline():
    ts = TaskSet([
        ptask("late", 10_000, 200_000, high=9),   # far deadline, high FP prio
        ptask("soon", 10_000, 100_000, deadline=30_000, high=1),
    ])
    sim = MultiprocessorSimulator(ts, 1, GlobalEDFPolicy())
    sim.run(100_000)
    soon = next(j for j in sim.finished if j.task.name == "soon")
    assert soon.finish_time == 10_000  # EDF ignores the FP priorities


def test_background_aperiodics_wait_for_periodics():
    ts = TaskSet(
        [ptask("p", 50_000, 100_000, high=1, cpu=0)],
        [AperiodicTask(name="a", wcet=10_000)],
    )
    sim = MultiprocessorSimulator(
        ts, 1, PartitionedFixedPriorityPolicy(), aperiodic_arrivals={"a": [0]}
    )
    sim.run(100_000)
    aper = next(j for j in sim.finished if j.task.name == "a")
    assert aper.start_time >= 50_000  # background: after the periodic


def test_mpdp_beats_background_fp_for_aperiodic_response():
    """The paper's core claim: MPDP serves aperiodics sooner than
    partitioned fixed priority with background service."""
    base = random_taskset(6, 1.2, seed=21, n_aperiodic=1, aperiodic_wcet=20_000,
                          min_period=80_000, max_period=400_000)
    ts = partition(base, 2)
    analysed = assign_promotions(ts, 2, tick=10_000)
    arrivals = {"a0": [105_000, 305_000, 505_000]}

    mpdp = TheoreticalSimulator(analysed, 2, tick=10_000, overhead=0.0,
                                aperiodic_arrivals=arrivals)
    mpdp.run(1_000_000)
    mpdp_resp = compute_metrics(mpdp.finished_jobs, 1_000_000).response_of("a0").mean

    fp = MultiprocessorSimulator(analysed, 2, PartitionedFixedPriorityPolicy(),
                                 aperiodic_arrivals=arrivals)
    fp.run(1_000_000)
    fp_resp = compute_metrics(fp.finished, 1_000_000).response_of("a0").mean

    assert mpdp_resp <= fp_resp


def test_switch_penalty_inflates_finish_times():
    ts = TaskSet([ptask("a", 10_000, 100_000)])
    plain = MultiprocessorSimulator(ts, 1, GlobalFixedPriorityPolicy())
    plain.run(100_000)
    ts2 = TaskSet([ptask("a", 10_000, 100_000)])
    taxed = MultiprocessorSimulator(ts2, 1, GlobalFixedPriorityPolicy(), switch_penalty=500)
    taxed.run(100_000)
    assert taxed.finished[0].finish_time == plain.finished[0].finish_time + 500


def test_deadline_misses_detected_on_overload():
    ts = TaskSet([
        ptask("a", 70_000, 100_000, high=2, cpu=0),
        ptask("b", 70_000, 100_000, high=1, cpu=0),
    ])
    sim = MultiprocessorSimulator(ts, 1, PartitionedFixedPriorityPolicy())
    sim.run(400_000)
    assert sim.deadline_misses()


def test_validation():
    ts = TaskSet([ptask("a", 10, 100)])
    with pytest.raises(ValueError):
        MultiprocessorSimulator(ts, 0, GlobalEDFPolicy())
    with pytest.raises(ValueError):
        MultiprocessorSimulator(ts, 1, GlobalEDFPolicy(), switch_penalty=-1)
    with pytest.raises(TypeError):
        MultiprocessorSimulator(ts, 1, GlobalEDFPolicy(), aperiodic_arrivals={"a": [1]})


def test_policy_names():
    assert PartitionedFixedPriorityPolicy().name == "partitioned-fp"
    assert GlobalFixedPriorityPolicy().name == "global-fp"
    assert GlobalEDFPolicy().name == "global-edf"
