"""Edge-case tests for the theoretical simulator."""

import pytest

from repro.analysis import assign_promotions, partition
from repro.core.task import AperiodicTask, PeriodicTask, TaskSet
from repro.simulators.theoretical import TheoreticalSimulator
from repro.trace.metrics import compute_metrics

TICK = 10_000


def analysed(periodic, aperiodic=(), n_cpus=2):
    ts = TaskSet(periodic, aperiodic).with_deadline_monotonic_priorities()
    ts = partition(ts, n_cpus)
    return assign_promotions(ts, n_cpus, tick=TICK)


def test_arrival_at_time_zero():
    ts = analysed(
        [PeriodicTask(name="p", wcet=5_000, period=100_000)],
        [AperiodicTask(name="a", wcet=3_000)],
    )
    sim = TheoreticalSimulator(ts, 2, tick=TICK, overhead=0.0,
                               aperiodic_arrivals={"a": [0]})
    sim.run(50_000)
    aper = next(j for j in sim.finished_jobs if j.task.name == "a")
    assert aper.release == 0
    assert aper.finish_time == 3_000


def test_simultaneous_arrivals_fifo():
    ts = analysed(
        [],
        [AperiodicTask(name="x", wcet=2_000), AperiodicTask(name="y", wcet=2_000)],
        n_cpus=1,
    )
    sim = TheoreticalSimulator(ts, 1, tick=TICK, overhead=0.0,
                               aperiodic_arrivals={"x": [500], "y": [500]})
    sim.run(50_000)
    x = next(j for j in sim.finished_jobs if j.task.name == "x")
    y = next(j for j in sim.finished_jobs if j.task.name == "y")
    # Deterministic FIFO among equal arrivals (uid order).
    assert {x.finish_time, y.finish_time} == {2_500, 4_500}


def test_arrival_exactly_on_tick():
    ts = analysed(
        [PeriodicTask(name="p", wcet=5_000, period=100_000)],
        [AperiodicTask(name="a", wcet=1_000)],
    )
    sim = TheoreticalSimulator(ts, 2, tick=TICK, overhead=0.0,
                               aperiodic_arrivals={"a": [TICK * 3]})
    sim.run(100_000)
    aper = next(j for j in sim.finished_jobs if j.task.name == "a")
    assert aper.release == TICK * 3
    assert aper.response_time == 1_000


def test_burst_of_arrivals_all_served():
    ts = analysed(
        [PeriodicTask(name="p", wcet=10_000, period=100_000)],
        [AperiodicTask(name="a", wcet=2_000)],
    )
    arrivals = list(range(5_000, 65_000, 3_000))
    sim = TheoreticalSimulator(ts, 2, tick=TICK, overhead=0.0,
                               aperiodic_arrivals={"a": arrivals})
    sim.run(300_000)
    served = [j for j in sim.finished_jobs if j.task.name == "a"]
    assert len(served) == len(arrivals)
    # FIFO: finish order matches arrival order.
    by_release = sorted(served, key=lambda j: j.release)
    finishes = [j.finish_time for j in by_release]
    assert finishes == sorted(finishes)


def test_aperiodic_arrivals_from_task_definition():
    ts = analysed(
        [PeriodicTask(name="p", wcet=5_000, period=100_000)],
        [AperiodicTask(name="a", wcet=1_500, arrivals=(20_000, 40_000))],
    )
    sim = TheoreticalSimulator(ts, 2, tick=TICK, overhead=0.0)
    sim.run(100_000)
    assert sum(1 for j in sim.finished_jobs if j.task.name == "a") == 2


def test_run_can_be_resumed():
    ts = analysed([PeriodicTask(name="p", wcet=5_000, period=50_000)])
    sim = TheoreticalSimulator(ts, 2, tick=TICK, overhead=0.0)
    sim.run(60_000)
    first = len(sim.finished_jobs)
    sim.run(250_000)
    assert len(sim.finished_jobs) > first
    assert not [j for j in sim.finished_jobs if j.missed_deadline]


def test_single_cpu_serialises_everything():
    ts = analysed(
        [
            PeriodicTask(name="p1", wcet=10_000, period=100_000),
            PeriodicTask(name="p2", wcet=10_000, period=100_000),
        ],
        n_cpus=1,
    )
    sim = TheoreticalSimulator(ts, 1, tick=TICK, overhead=0.0)
    sim.run(100_000)
    finishes = sorted(j.finish_time for j in sim.finished_jobs)
    assert finishes == [10_000, 20_000]


def test_metrics_report_promotions():
    # Zero-laxity task promotes on release.
    ts = analysed(
        [PeriodicTask(name="tight", wcet=40_000, period=100_000, deadline=50_000)],
        n_cpus=1,
    )
    sim = TheoreticalSimulator(ts, 1, tick=TICK, overhead=0.0)
    sim.run(300_000)
    metrics = compute_metrics(sim.finished_jobs, 300_000)
    assert metrics.promotions >= 2
    assert metrics.deadline_misses == 0
