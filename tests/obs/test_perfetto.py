"""Chrome trace-event / Perfetto exporter."""

import json

import pytest

from repro.obs.perfetto import (
    SCHEDULER_TID,
    SOC_PID,
    TLM_TID_BASE,
    chrome_trace_json,
    trace_to_chrome,
    write_chrome_trace,
)
from repro.trace.recorder import TraceRecorder

pytestmark = pytest.mark.obs


def schedule_trace():
    trace = TraceRecorder()
    trace.record(0, "release", job="a#0")
    trace.record(5, "dispatch", job="a#0", cpu=0)
    trace.record(12, "irq", cpu=0, info="timer")
    trace.record(20, "preempt", job="a#0", cpu=0)
    trace.record(20, "dispatch", job="b#0", cpu=0)
    trace.record(30, "finish", job="b#0", cpu=0)
    trace.record(25, "dispatch", job="c#0", cpu=1)
    trace.record(40, "finish", job="c#0", cpu=1)
    return trace


class TestSlices:
    def test_dispatch_preempt_finish_become_complete_slices(self):
        # clock_hz=1e6 makes 1 cycle == 1 us, so ts/dur read directly.
        doc = trace_to_chrome(schedule_trace(), clock_hz=1_000_000)
        slices = [(e["tid"], e["name"], e["ts"], e["dur"])
                  for e in doc["traceEvents"] if e["ph"] == "X"]
        assert slices == [
            (0, "a#0", 5.0, 15.0),
            (0, "b#0", 20.0, 10.0),
            (1, "c#0", 25.0, 15.0),
        ]

    def test_open_slice_closed_at_horizon(self):
        trace = TraceRecorder()
        trace.record(10, "dispatch", job="a#0", cpu=0)
        doc = trace_to_chrome(trace, clock_hz=1_000_000, horizon=100)
        [only] = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert (only["ts"], only["dur"]) == (10.0, 90.0)

    def test_cycle_to_microsecond_conversion(self):
        trace = TraceRecorder()
        trace.record(0, "dispatch", job="a#0", cpu=0)
        trace.record(50, "finish", job="a#0", cpu=0)
        doc = trace_to_chrome(trace, clock_hz=50_000_000)  # 50 MHz: 50 cyc = 1 us
        [only] = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert only["dur"] == 1.0
        assert only["args"] == {"start_cycle": 0, "end_cycle": 50}


class TestInstantsAndTracks:
    def test_cpu_instants_on_cpu_track(self):
        doc = trace_to_chrome(schedule_trace(), clock_hz=1_000_000)
        [irq] = [e for e in doc["traceEvents"]
                 if e["ph"] == "i" and e["name"] == "irq"]
        assert irq["tid"] == 0 and irq["s"] == "t" and irq["ts"] == 12.0

    def test_cpuless_events_on_scheduler_track(self):
        doc = trace_to_chrome(schedule_trace(), clock_hz=1_000_000)
        [release] = [e for e in doc["traceEvents"]
                     if e["ph"] == "i" and e["name"].startswith("release")]
        assert release["tid"] == SCHEDULER_TID and release["s"] == "p"

    def test_track_metadata(self):
        doc = trace_to_chrome(schedule_trace())
        names = {(e["tid"], e["args"]["name"])
                 for e in doc["traceEvents"] if e["ph"] == "M"
                 and e["name"] == "thread_name"}
        assert names == {(0, "cpu0"), (1, "cpu1"), (SCHEDULER_TID, "scheduler")}
        assert all(e["pid"] == SOC_PID for e in doc["traceEvents"])

    def test_document_envelope(self):
        doc = trace_to_chrome(schedule_trace())
        assert doc["displayTimeUnit"] == "ms"
        assert doc["metadata"]["clock_hz"] > 0

    def test_rejects_nonpositive_clock(self):
        with pytest.raises(ValueError):
            trace_to_chrome(schedule_trace(), clock_hz=0)


class TestSerialisation:
    def test_json_text_parses(self):
        doc = json.loads(chrome_trace_json(schedule_trace()))
        assert isinstance(doc["traceEvents"], list) and doc["traceEvents"]

    def test_write_chrome_trace(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(schedule_trace(), str(path))
        doc = json.loads(path.read_text())
        assert any(e["ph"] == "X" for e in doc["traceEvents"])

    def test_empty_trace_is_valid(self):
        doc = trace_to_chrome(TraceRecorder())
        assert doc["traceEvents"] == [
            {"ph": "M", "pid": SOC_PID, "tid": 0, "name": "process_name",
             "args": {"name": "soc"}}
        ]


class TestTLMTrack:
    def _trace(self):
        trace = TraceRecorder()
        trace.record(500, "tlm_block", job="a#0", cpu=0,
                     info="start=100 nominal=380 stretch=1.0500")
        trace.record(900, "tlm_block", job="b#0", cpu=1,
                     info="start=600 nominal=290 stretch=1.0000")
        return trace

    def test_blocks_become_slices_on_tlm_tracks(self):
        doc = trace_to_chrome(self._trace(), clock_hz=1_000_000)
        slices = [e for e in doc["traceEvents"]
                  if e["ph"] == "X" and e["cat"] == "tlm"]
        assert [(s["name"], s["tid"], s["ts"], s["dur"]) for s in slices] == [
            (("a#0"), TLM_TID_BASE + 0, 100.0, 400.0),
            (("b#0"), TLM_TID_BASE + 1, 600.0, 300.0),
        ]
        # Contention adjustment is annotated on every block.
        assert slices[0]["args"]["contention_stretch"] == "1.0500"
        assert slices[0]["args"]["nominal_cycles"] == "380"

    def test_tlm_tracks_named(self):
        doc = trace_to_chrome(self._trace())
        names = {(e["tid"], e["args"]["name"])
                 for e in doc["traceEvents"] if e["ph"] == "M"
                 and e["name"] == "thread_name"}
        assert (TLM_TID_BASE + 0, "tlm-cpu0") in names
        assert (TLM_TID_BASE + 1, "tlm-cpu1") in names

    def test_malformed_info_degrades_to_instantaneous_slice(self):
        trace = TraceRecorder()
        trace.record(500, "tlm_block", job="a#0", cpu=0, info="garbage")
        doc = trace_to_chrome(trace, clock_hz=1_000_000)
        (block,) = [e for e in doc["traceEvents"]
                    if e["ph"] == "X" and e["cat"] == "tlm"]
        assert block["ts"] == 500.0 and block["dur"] == 0.0
