"""Prometheus exposition conformance: escaping and scrape round-trips."""

import pytest

from repro.obs.metrics import MetricsRegistry, parse_prometheus_text

pytestmark = pytest.mark.obs


def scrape(registry):
    return parse_prometheus_text(registry.to_prometheus_text())


class TestExportConformance:
    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("reqs_total", labels={"path": 'a"b\\c\nd'}).inc()
        text = registry.to_prometheus_text()
        assert 'path="a\\"b\\\\c\\nd"' in text

    def test_help_escaped(self):
        registry = MetricsRegistry()
        registry.counter("x_total", help="line1\nline2 \\ backslash").inc()
        text = registry.to_prometheus_text()
        assert "# HELP x_total line1\\nline2 \\\\ backslash" in text

    def test_histogram_has_inf_bucket_sum_count(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", buckets=(10, 100))
        for value in (5, 50, 500):
            histogram.observe(value)
        text = registry.to_prometheus_text()
        assert 'lat_bucket{le="+Inf"} 3' in text
        assert "lat_sum 555.0" in text
        assert "lat_count 3" in text


class TestParser:
    def test_counter_round_trip_with_escapes(self):
        registry = MetricsRegistry()
        registry.counter("reqs_total", labels={"path": 'a"b\\c\nd'},
                         help="with\nnewline").inc(7)
        families = scrape(registry)
        assert families["reqs_total"]["type"] == "counter"
        assert families["reqs_total"]["help"] == "with\nnewline"
        assert families["reqs_total"]["samples"] == [
            ("reqs_total", (("path", 'a"b\\c\nd'),), 7.0)
        ]

    def test_literal_backslash_n_stays_literal(self):
        registry = MetricsRegistry()
        registry.counter("x_total", labels={"v": "a\\nb"}).inc()
        families = scrape(registry)
        (_, labels, _) = families["x_total"]["samples"][0]
        assert labels == (("v", "a\\nb"),)

    def test_histogram_samples_fold_into_base_family(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", buckets=(10, 100),
                                       labels={"cpu": "0"})
        for value in (5, 50, 500):
            histogram.observe(value)
        families = scrape(registry)
        assert set(families) == {"lat"}
        assert families["lat"]["type"] == "histogram"
        buckets = {labels: value
                   for name, labels, value in families["lat"]["samples"]
                   if name == "lat_bucket"}
        assert buckets[(("cpu", "0"), ("le", "10"))] == 1.0
        assert buckets[(("cpu", "0"), ("le", "100"))] == 2.0
        assert buckets[(("cpu", "0"), ("le", "+Inf"))] == 3.0
        flat = {name: value
                for name, labels, value in families["lat"]["samples"]
                if name != "lat_bucket"}
        assert flat == {"lat_sum": 555.0, "lat_count": 3.0}

    def test_gauge_round_trip(self):
        registry = MetricsRegistry()
        registry.gauge("depth", labels={"queue": "local", "cpu": "1"}).set(2.5)
        families = scrape(registry)
        assert families["depth"]["samples"] == [
            ("depth", (("cpu", "1"), ("queue", "local")), 2.5)
        ]

    def test_inf_values_parse(self):
        families = parse_prometheus_text("x +Inf\ny -Inf\n")
        assert families["x"]["samples"][0][2] == float("inf")
        assert families["y"]["samples"][0][2] == float("-inf")

    def test_malformed_sample_raises(self):
        with pytest.raises(ValueError):
            parse_prometheus_text("not a metric line at all { } \n")
        with pytest.raises(ValueError):
            parse_prometheus_text('x{bad labels} 1\n')
        with pytest.raises(ValueError):
            parse_prometheus_text("# TYPE x wat\n")

    def test_comments_and_blank_lines_skipped(self):
        families = parse_prometheus_text("\n# a comment\nx_total 1\n\n")
        assert families["x_total"]["samples"] == [("x_total", (), 1.0)]

    def test_round_trip_is_lossless_for_every_family_type(self):
        registry = MetricsRegistry()
        registry.counter("ops_total", labels={"kind": "a"}).inc(3)
        registry.gauge("util").set(0.75)
        histogram = registry.histogram("cycles", buckets=(10,))
        histogram.observe(4)
        families = scrape(registry)
        assert {name: fam["type"] for name, fam in families.items()} == {
            "ops_total": "counter", "util": "gauge", "cycles": "histogram",
        }
