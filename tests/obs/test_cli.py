"""repro-obs CLI: self-check, convert, report plumbing."""

import json

import pytest

from repro.obs.cli import main
from repro.trace.export import trace_to_csv, trace_to_json
from repro.trace.recorder import TraceRecorder

pytestmark = pytest.mark.obs


def sample_trace():
    trace = TraceRecorder()
    trace.record(0, "release", job="a#0")
    trace.record(5, "dispatch", job="a#0", cpu=0)
    trace.record(20, "finish", job="a#0", cpu=0)
    trace.record(12, "irq", cpu=0, info="timer")
    return trace


def write(tmp_path, name, text):
    path = tmp_path / name
    path.write_text(text)
    return str(path)


class TestSelfCheck:
    def test_passes(self, capsys):
        assert main(["--self-check"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out and "FAIL " not in out


class TestConvert:
    def test_json_to_perfetto(self, tmp_path, capsys):
        src = write(tmp_path, "trace.json", trace_to_json(sample_trace()))
        assert main(["convert", src]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert any(e["ph"] == "X" and e["name"] == "a#0"
                   for e in doc["traceEvents"])

    def test_csv_to_perfetto_file(self, tmp_path):
        src = write(tmp_path, "trace.csv", trace_to_csv(sample_trace()))
        dst = tmp_path / "out.json"
        assert main(["convert", src, "--out", str(dst)]) == 0
        doc = json.loads(dst.read_text())
        assert doc["traceEvents"]

    def test_json_to_jsonl_and_back(self, tmp_path, capsys):
        src = write(tmp_path, "trace.json", trace_to_json(sample_trace()))
        jsonl = tmp_path / "trace.jsonl"
        assert main(["convert", src, "--to", "jsonl", "--out", str(jsonl)]) == 0
        assert main(["convert", str(jsonl), "--to", "csv"]) == 0
        assert capsys.readouterr().out == trace_to_csv(sample_trace())

    def test_jsonl_to_json(self, tmp_path, capsys):
        src = write(tmp_path, "trace.json", trace_to_json(sample_trace()))
        jsonl = tmp_path / "t.jsonl"
        main(["convert", src, "--to", "jsonl", "--out", str(jsonl)])
        assert main(["convert", str(jsonl), "--to", "json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert [r["kind"] for r in rows] == ["release", "dispatch", "finish", "irq"]

    def test_clock_hz_scales_timestamps(self, tmp_path, capsys):
        src = write(tmp_path, "trace.json", trace_to_json(sample_trace()))
        assert main(["convert", src, "--clock-hz", "1000000"]) == 0
        doc = json.loads(capsys.readouterr().out)
        [slice_] = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert (slice_["ts"], slice_["dur"]) == (5.0, 15.0)

    def test_missing_file_is_clean_error(self, tmp_path, capsys):
        assert main(["convert", str(tmp_path / "missing.json")]) == 1
        assert "cannot load" in capsys.readouterr().err

    def test_malformed_csv_is_clean_error(self, tmp_path, capsys):
        src = write(tmp_path, "bad.csv", "not,a,trace\n1,2,3\n")
        assert main(["convert", src]) == 1
        assert "cannot load" in capsys.readouterr().err


class TestReport:
    @pytest.mark.slow
    def test_report_writes_artefacts(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        jsonl = tmp_path / "trace.jsonl"
        perfetto = tmp_path / "perfetto.json"
        assert main([
            "report", "--cpus", "2", "--util", "0.4", "--scale", "1000",
            "--horizon-margin", "12.0",
            "--out", str(out),
            "--trace-jsonl", str(jsonl),
            "--perfetto", str(perfetto),
        ]) == 0
        report = json.loads(out.read_text())
        assert "sched_cycle_cycles" in report["metrics"]
        assert jsonl.read_text().strip()
        doc = json.loads(perfetto.read_text())
        assert any(e["ph"] == "X" for e in doc["traceEvents"])

    def test_perfetto_without_jsonl_is_an_error(self, capsys):
        assert main(["report", "--perfetto", "x.json", "--scale", "1000"]) == 1
        assert "--trace-jsonl" in capsys.readouterr().err


def test_no_command_prints_help(capsys):
    assert main([]) == 2
