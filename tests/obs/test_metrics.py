"""MetricsRegistry: instruments, families, labels and exports."""

import json

import pytest

from repro.obs.metrics import (
    DEFAULT_CYCLE_BUCKETS,
    DEFAULT_DEPTH_BUCKETS,
    Histogram,
    MetricsRegistry,
)

pytestmark = pytest.mark.obs


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("events_total")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("x").inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(3)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value == 2

    def test_histogram_buckets_and_stats(self):
        histogram = Histogram(buckets=(10, 100, 1000))
        for value in (5, 50, 500, 5000):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.total == 5555
        assert histogram.minimum == 5 and histogram.maximum == 5000
        assert histogram.counts == [1, 1, 1]
        assert histogram.overflow == 1
        assert histogram.cumulative() == [
            ("10", 1), ("100", 2), ("1000", 3), ("+Inf", 4)
        ]

    def test_histogram_boundary_is_inclusive(self):
        histogram = Histogram(buckets=(10,))
        histogram.observe(10)
        assert histogram.counts == [1] and histogram.overflow == 0

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            Histogram(buckets=())
        with pytest.raises(ValueError):
            Histogram(buckets=(10, 5))
        with pytest.raises(ValueError):
            Histogram(buckets=(10, 10))


class TestFamilies:
    def test_same_name_same_labels_is_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("irqs_total", labels={"kind": "timer"})
        b = registry.counter("irqs_total", labels={"kind": "timer"})
        assert a is b

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        a = registry.counter("x", labels={"a": 1, "b": 2})
        b = registry.counter("x", labels={"b": 2, "a": 1})
        assert a is b

    def test_distinct_labels_are_distinct_series(self):
        registry = MetricsRegistry()
        registry.counter("irqs_total", labels={"cpu": 0}).inc()
        registry.counter("irqs_total", labels={"cpu": 1}).inc(2)
        rows = registry.snapshot()["irqs_total"]["series"]
        assert [(r["labels"], r["value"]) for r in rows] == [
            ({"cpu": "0"}, 1),
            ({"cpu": "1"}, 2),
        ]

    def test_type_conflict_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_histogram_bucket_mismatch_is_an_error(self):
        registry = MetricsRegistry()
        registry.histogram("lat", buckets=(10, 100))
        with pytest.raises(ValueError):
            registry.histogram("lat", buckets=(1, 2, 3))

    def test_default_bucket_constants_are_increasing(self):
        for bounds in (DEFAULT_CYCLE_BUCKETS, DEFAULT_DEPTH_BUCKETS):
            assert list(bounds) == sorted(bounds)
            assert len(set(bounds)) == len(bounds)


class TestExport:
    def build(self):
        registry = MetricsRegistry()
        registry.counter("irqs_total", labels={"kind": "timer"},
                         help="interrupts delivered").inc(3)
        registry.gauge("depth").set(2)
        histogram = registry.histogram("lat", buckets=(10, 100), help="latency")
        for value in (5, 50, 500):
            histogram.observe(value)
        return registry

    def test_snapshot_shape(self):
        snap = self.build().snapshot()
        assert set(snap) == {"irqs_total", "depth", "lat"}
        lat = snap["lat"]["series"][0]
        assert lat["count"] == 3
        assert lat["buckets"] == {"10": 1, "100": 2, "+Inf": 3}

    def test_to_json_is_deterministic(self):
        assert self.build().to_json() == self.build().to_json()
        json.loads(self.build().to_json(indent=2))  # parses

    def test_prometheus_text(self):
        text = self.build().to_prometheus_text()
        assert "# HELP irqs_total interrupts delivered" in text
        assert "# TYPE irqs_total counter" in text
        assert 'irqs_total{kind="timer"} 3' in text
        assert "# TYPE lat histogram" in text
        assert 'lat_bucket{le="10"} 1' in text
        assert 'lat_bucket{le="+Inf"} 3' in text
        assert "lat_sum 555.0" in text
        assert "lat_count 3" in text
        assert "depth 2" in text  # integral floats render as ints
        assert text.endswith("\n")

    def test_prometheus_text_labeled_histogram(self):
        registry = MetricsRegistry()
        registry.histogram("d", buckets=(1,), labels={"cpu": 0}).observe(0)
        text = registry.to_prometheus_text()
        assert 'd_bucket{cpu="0",le="1"} 1' in text
        assert 'd_count{cpu="0"} 1' in text

    def test_len_and_contains(self):
        registry = self.build()
        assert len(registry) == 3
        assert "lat" in registry and "nope" not in registry
