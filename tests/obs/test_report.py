"""RunReport assembly, fold helpers, and the instrumented prototype run."""

import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.report import (
    RunReport,
    fold_bus_monitor,
    fold_icaches,
    fold_run_cache,
)
from repro.trace.recorder import TraceRecorder

pytestmark = pytest.mark.obs


class FakeMonitor:
    """Duck-typed stand-in for BusMonitor (samples + summary views)."""

    class Sample:
        def __init__(self, utilization):
            self.utilization = utilization

    def __init__(self, series):
        self.samples = [self.Sample(u) for u in series]

    def peak_utilization(self):
        return max((s.utilization for s in self.samples), default=0.0)

    def steady_state_utilization(self, skip=1):
        tail = self.samples[skip:]
        return sum(s.utilization for s in tail) / len(tail) if tail else 0.0


class FakeICache:
    def __init__(self, cpu_id, hits, misses):
        self.cpu_id = cpu_id
        self.hits = hits
        self.misses = misses

    @property
    def hit_rate(self):
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class FakeRunCache:
    def stats(self):
        return {"hits": 3, "misses": 1, "hit_rate": 0.75}


class TestFoldHelpers:
    def test_fold_bus_monitor(self):
        registry = MetricsRegistry()
        fold_bus_monitor(registry, FakeMonitor([0.2, 0.6, 0.8]))
        snap = registry.snapshot()
        assert snap["bus_window_utilization"]["series"][0]["count"] == 3
        assert snap["bus_peak_utilization"]["series"][0]["value"] == 0.8
        assert snap["bus_steady_state_utilization"]["series"][0]["value"] == pytest.approx(0.7)

    def test_fold_icaches_per_cpu(self):
        registry = MetricsRegistry()
        fold_icaches(registry, [FakeICache(0, 90, 10), FakeICache(1, 40, 60)])
        snap = registry.snapshot()
        rates = {row["labels"]["cpu"]: row["value"]
                 for row in snap["icache_hit_rate"]["series"]}
        assert rates == {"0": 0.9, "1": 0.4}
        hits = {row["labels"]["cpu"]: row["value"]
                for row in snap["icache_hits_total"]["series"]}
        assert hits == {"0": 90, "1": 40}

    def test_fold_run_cache(self):
        registry = MetricsRegistry()
        fold_run_cache(registry, FakeRunCache())
        snap = registry.snapshot()
        assert snap["run_cache_hits_total"]["series"][0]["value"] == 3
        assert snap["run_cache_misses_total"]["series"][0]["value"] == 1
        assert snap["run_cache_hit_rate"]["series"][0]["value"] == 0.75


class TestRunReport:
    def build(self):
        registry = MetricsRegistry()
        registry.counter("context_switches_total").inc(7)
        trace = TraceRecorder()
        trace.record(0, "release", job="a#0")
        trace.record(5, "dispatch", job="a#0", cpu=0)
        trace.record(9, "finish", job="a#0", cpu=0)
        return RunReport.build(
            label="unit", registry=registry,
            params={"n_cpus": 2}, kernel_stats={"ticks": 4}, trace=trace,
        )

    def test_sections(self):
        report = self.build()
        assert report.label == "unit"
        assert report.params == {"n_cpus": 2}
        assert report.kernel == {"ticks": 4}
        assert report.metric("context_switches_total")["series"][0]["value"] == 7
        assert report.trace == {
            "emitted": 3,
            "retained": 3,
            "by_kind": {"dispatch": 1, "finish": 1, "release": 1},
        }

    def test_json_round_trip_and_write(self, tmp_path):
        report = self.build()
        parsed = json.loads(report.to_json())
        assert parsed["label"] == "unit"
        path = tmp_path / "report.json"
        report.write(str(path))
        assert json.loads(path.read_text()) == report.to_dict()

    def test_summary_renders(self):
        text = self.build().summary()
        assert "run report: unit" in text
        assert "context_switches_total: 7" in text
        assert "3 events emitted" in text

    def test_metric_missing_raises(self):
        with pytest.raises(KeyError):
            self.build().metric("nope")


@pytest.mark.slow
class TestInstrumentedPrototypeRun:
    """Acceptance: a Figure-4-style run with observability enabled."""

    @pytest.fixture(scope="class")
    def report(self):
        from repro.experiments.runner import prototype_run_report

        return prototype_run_report(n_cpus=2, utilization=0.5, scale=1_000,
                                    horizon_margin_s=12.0)

    def test_headline_metric_families_present(self, report):
        for name in (
            "sched_cycle_cycles",       # scheduler-cycle latency histogram
            "queue_depth",              # per-cpu queue depths
            "ipi_delivery_cycles",      # IPI delivery latency
            "mpic_delivery_cycles",
            "mpic_delivered_total",     # per-peripheral distribution
            "sync_lock_wait_cycles",    # lock wait times
            "sync_lock_hold_cycles",
            "bus_window_utilization",   # bus contention
            "bus_peak_utilization",
            "icache_hit_rate",          # cache hit rates
            "context_switches_total",
            "kernel_irqs_total",
            "aperiodic_response_s",
            "deadline_misses",
        ):
            assert name in report.metrics, name

    def test_scheduler_cycles_observed(self, report):
        series = report.metric("sched_cycle_cycles")["series"][0]
        assert series["count"] > 0
        assert series["min"] >= 0

    def test_queue_depths_cover_every_cpu(self, report):
        rows = report.metric("queue_depth")["series"]
        local_cpus = {row["labels"]["cpu"] for row in rows
                      if row["labels"]["queue"] == "local"}
        assert local_cpus == {"0", "1"}
        queues = {row["labels"]["queue"] for row in rows}
        assert {"periodic_ready", "aperiodic_ready", "local"} <= queues

    def test_ipi_and_lock_metrics_observed(self, report):
        assert report.metric("ipi_delivery_cycles")["series"][0]["count"] > 0
        assert report.metric("sync_lock_wait_cycles")["series"][0]["count"] > 0

    def test_bus_utilization_sampled(self, report):
        assert report.metric("bus_window_utilization")["series"][0]["count"] > 0
        peak = report.metric("bus_peak_utilization")["series"][0]["value"]
        assert 0.0 <= peak <= 1.0

    def test_trace_summary_bounded_by_ring(self, report):
        assert report.trace["emitted"] >= report.trace["retained"]
        assert report.trace["retained"] <= 65_536

    def test_kernel_stats_and_params_recorded(self, report):
        assert report.params["n_cpus"] == 2
        assert "context_switches" in report.kernel


class TestDeadlineMisses:
    """Satellite: deadline misses are a first-class report field."""

    def test_field_mirrors_kernel_stats(self):
        registry = MetricsRegistry()
        report = RunReport.build(
            label="faulty", registry=registry,
            kernel_stats={"ticks": 4, "deadline_misses": 3},
        )
        assert report.deadline_misses == 3
        payload = json.loads(report.to_json())
        assert payload["deadline_misses"] == 3

    def test_defaults_to_zero(self):
        report = RunReport.build(label="clean", registry=MetricsRegistry())
        assert report.deadline_misses == 0
        assert report.to_dict()["deadline_misses"] == 0

    def test_instrumented_fault_run_reports_misses(self):
        from repro.faults.injector import FaultInjector
        from repro.faults.scenarios import crash_plan, demo_taskset
        from repro.hw.soc import SoC, SoCConfig
        from repro.kernel import DualPriorityMicrokernel

        registry = MetricsRegistry()
        soc = SoC(SoCConfig(n_cpus=2, tick_cycles=20_000, chunk_cycles=1_000))
        kernel = DualPriorityMicrokernel(soc, demo_taskset(), metrics=registry)
        FaultInjector(kernel, crash_plan()).arm()
        kernel.run(until=400_000)

        report = RunReport.build(label="crash-storm", registry=registry,
                                 kernel_stats=kernel.stats())
        assert report.deadline_misses == kernel.deadline_misses > 0
        assert "deadline_misses_total" in report.metrics


class TestSinkLossAccounting:
    """Satellite: ring-buffer drops and streamed bytes surface in reports."""

    def test_ring_buffer_drops_reported(self):
        from repro.obs.sinks import RingBufferSink

        trace = TraceRecorder(sink=RingBufferSink(capacity=4))
        for time in range(10):
            trace.record(time, "tick", cpu=0)
        report = RunReport.build(label="ring", registry=MetricsRegistry(),
                                 trace=trace)
        assert report.trace["emitted"] == 10
        assert report.trace["retained"] == 4
        assert report.trace["dropped"] == 6
        assert "6 dropped" in report.summary()

    def test_jsonl_sink_bytes_reported(self, tmp_path):
        from repro.obs.sinks import JsonlFileSink

        path = tmp_path / "trace.jsonl"
        trace = TraceRecorder(sink=JsonlFileSink(path))
        trace.record(0, "release", job="a#0")
        trace.record(5, "dispatch", job="a#0", cpu=1)
        trace.close()
        report = RunReport.build(label="stream", registry=MetricsRegistry(),
                                 trace=trace)
        assert report.trace["bytes_written"] == path.stat().st_size > 0
        assert f"{report.trace['bytes_written']} byte(s) streamed" in report.summary()

    def test_list_sink_has_no_loss_fields(self):
        trace = TraceRecorder()
        trace.record(0, "tick", cpu=0)
        report = RunReport.build(label="list", registry=MetricsRegistry(),
                                 trace=trace)
        assert "dropped" not in report.trace
        assert "bytes_written" not in report.trace
