"""Pluggable trace sinks: list, ring buffer, streaming JSONL."""

import json

import pytest

from repro.obs.sinks import (
    JsonlFileSink,
    RingBufferSink,
    event_from_dict,
    event_to_dict,
    trace_from_jsonl,
)
from repro.trace.recorder import ListSink, TraceEvent, TraceRecorder

pytestmark = pytest.mark.obs


class TestListSink:
    def test_is_the_default(self):
        trace = TraceRecorder()
        assert isinstance(trace.sink, ListSink)

    def test_events_property_is_the_backing_list(self):
        # Deserialisers append to ``trace.events`` directly; both the
        # recorder and the sink must see those events.
        trace = TraceRecorder()
        trace.events.append(TraceEvent(0, "tick", cpu=0))
        assert len(trace) == 1
        assert trace.of_kind("tick")

    def test_record_counts_emitted(self):
        trace = TraceRecorder()
        trace.record(0, "tick", cpu=0)
        assert trace.sink.emitted == 1 and len(trace) == 1


class TestRingBufferSink:
    def test_keeps_the_tail(self):
        trace = TraceRecorder(sink=RingBufferSink(capacity=3))
        for time in range(10):
            trace.record(time, "tick", cpu=0)
        assert [e.time for e in trace] == [7, 8, 9]
        assert trace.sink.emitted == 10
        assert trace.sink.dropped == 7
        assert len(trace) == 3

    def test_under_capacity_drops_nothing(self):
        sink = RingBufferSink(capacity=8)
        trace = TraceRecorder(sink=sink)
        trace.record(0, "tick", cpu=0)
        assert sink.dropped == 0 and len(trace) == 1

    def test_queries_work_on_the_retained_window(self):
        trace = TraceRecorder(sink=RingBufferSink(capacity=2))
        trace.record(0, "dispatch", job="a#0", cpu=0)
        trace.record(5, "finish", job="a#0", cpu=0)
        trace.record(6, "dispatch", job="b#0", cpu=0)
        assert [e.kind for e in trace] == ["finish", "dispatch"]
        assert trace.of_job("b#0")

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            RingBufferSink(capacity=0)


class TestJsonlFileSink:
    def test_streams_and_reloads(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        trace = TraceRecorder(sink=JsonlFileSink(path))
        trace.record(0, "release", job="a#0")
        trace.record(5, "dispatch", job="a#0", cpu=1)
        trace.record(9, "finish", job="a#0", cpu=1, info="ok")
        trace.close()

        lines = path.read_text().strip().split("\n")
        assert len(lines) == 3
        assert json.loads(lines[0]) == {
            "time": 0, "kind": "release", "job": "a#0", "cpu": None, "info": None
        }

        reloaded = trace_from_jsonl(path)
        assert [(e.time, e.kind, e.job, e.cpu, e.info) for e in reloaded] == [
            (0, "release", "a#0", None, None),
            (5, "dispatch", "a#0", 1, None),
            (9, "finish", "a#0", 1, "ok"),
        ]

    def test_retains_nothing(self, tmp_path):
        trace = TraceRecorder(sink=JsonlFileSink(tmp_path / "t.jsonl"))
        trace.record(0, "tick", cpu=0)
        assert trace.events == []
        assert trace.sink.emitted == 1
        trace.close()

    def test_close_is_idempotent_and_emit_after_close_raises(self, tmp_path):
        sink = JsonlFileSink(tmp_path / "t.jsonl")
        trace = TraceRecorder(sink=sink)
        trace.close()
        trace.close()
        with pytest.raises(RuntimeError):
            trace.record(0, "tick", cpu=0)

    def test_context_manager(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlFileSink(path) as sink:
            TraceRecorder(sink=sink).record(0, "tick", cpu=0)
        assert len(trace_from_jsonl(path)) == 1


class TestDisabledRecorder:
    """satellite: TraceRecorder(enabled=False) must short-circuit."""

    def test_record_is_a_no_op_for_every_sink(self, tmp_path):
        sinks = (ListSink(), RingBufferSink(capacity=4),
                 JsonlFileSink(tmp_path / "t.jsonl"))
        for sink in sinks:
            trace = TraceRecorder(enabled=False, sink=sink)
            trace.record(0, "tick", cpu=0)
            assert sink.emitted == 0
            assert len(trace) == 0
            trace.close()

    def test_disabled_skips_kind_validation(self):
        # The short-circuit returns before any bookkeeping, including
        # the unknown-kind check -- by design: the disabled path must
        # do as close to nothing as possible.
        trace = TraceRecorder(enabled=False)
        trace.record(0, "not-a-kind")
        assert len(trace) == 0

    def test_enabled_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            TraceRecorder().record(0, "not-a-kind")


class TestEventDicts:
    def test_round_trip(self):
        event = TraceEvent(7, "acquire", cpu=1, info="lock=3")
        assert event_from_dict(event_to_dict(event)) == event
