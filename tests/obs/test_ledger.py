"""Run ledger: atomic appends, history, directional diffing."""

import json

import pytest

from repro.obs.ledger import (
    LEDGER_ENV,
    Ledger,
    LedgerEntry,
    diff_numeric,
    flatten_numeric,
    format_diff,
    format_history,
)

pytestmark = pytest.mark.obs


def entry(**overrides):
    base = dict(kind="sweep", label="demo", config_hash="abc123",
                fidelity="prototype", wall_time_s=1.5, cells=4,
                cache={"hits": 2, "misses": 2, "hit_rate": 0.5},
                metrics_digest="d" * 16,
                results={"mean_response_s": 10.5})
    base.update(overrides)
    return LedgerEntry(**base)


class TestLedger:
    def test_append_stamps_when_and_round_trips(self, tmp_path):
        ledger = Ledger(tmp_path / "ledger.jsonl")
        appended = ledger.append(entry())
        assert appended.when > 0
        rows = ledger.entries()
        assert len(rows) == 1
        assert rows[0].to_dict() == appended.to_dict()

    def test_appends_accumulate_oldest_first(self, tmp_path):
        ledger = Ledger(tmp_path / "ledger.jsonl")
        for index in range(3):
            ledger.append(entry(label=f"run-{index}"))
        assert [e.label for e in ledger.entries()] == ["run-0", "run-1", "run-2"]
        assert [e.label for e in ledger.tail(2)] == ["run-1", "run-2"]
        assert len(ledger) == 3

    def test_lines_are_single_compact_json_objects(self, tmp_path):
        ledger = Ledger(tmp_path / "ledger.jsonl")
        ledger.append(entry())
        text = (tmp_path / "ledger.jsonl").read_text()
        assert text.endswith("\n") and text.count("\n") == 1
        assert json.loads(text)["kind"] == "sweep"

    def test_corrupt_lines_skipped_and_counted(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = Ledger(path)
        ledger.append(entry())
        with open(path, "a") as handle:
            handle.write('{"kind": "trunc')  # torn tail
        rows = ledger.entries()
        assert len(rows) == 1 and ledger.corrupt == 1

    def test_missing_file_reads_empty(self, tmp_path):
        ledger = Ledger(tmp_path / "absent.jsonl")
        assert ledger.entries() == [] and len(ledger) == 0

    def test_env_override(self, tmp_path, monkeypatch):
        target = tmp_path / "custom.jsonl"
        monkeypatch.setenv(LEDGER_ENV, str(target))
        ledger = Ledger()
        ledger.append(entry())
        assert target.exists()

    def test_from_dict_tolerates_missing_fields(self):
        sparse = LedgerEntry.from_dict({"kind": "bench"})
        assert sparse.kind == "bench" and sparse.label == "?"
        assert sparse.results == {} and sparse.timestamp() == "-"


class TestFlatten:
    def test_nested_paths_and_list_indices(self):
        flat = flatten_numeric({"a": {"b": 1}, "c": [2, {"d": 3}], "s": "x"})
        assert flat == {"a.b": 1.0, "c[0]": 2.0, "c[1].d": 3.0}

    def test_bools_are_not_numbers(self):
        assert flatten_numeric({"ok": True, "n": 1}) == {"n": 1.0}


class TestDiff:
    def test_regression_in_bad_direction(self):
        report = diff_numeric({"wall_time_s": 1.0}, {"wall_time_s": 1.5})
        assert report["regressions"] == ["wall_time_s"]

    def test_improvement_not_flagged(self):
        report = diff_numeric({"wall_time_s": 1.5, "events_per_s": 100},
                              {"wall_time_s": 1.0, "events_per_s": 200})
        assert report["regressions"] == []

    def test_higher_is_better_keys_regress_downward(self):
        report = diff_numeric({"events_per_s": 200}, {"events_per_s": 100})
        assert report["regressions"] == ["events_per_s"]

    def test_threshold_gates_movement(self):
        small = diff_numeric({"wall_time_s": 1.0}, {"wall_time_s": 1.05})
        big = diff_numeric({"wall_time_s": 1.0}, {"wall_time_s": 1.05},
                           threshold=0.01)
        assert small["regressions"] == [] and big["regressions"] == ["wall_time_s"]

    def test_neutral_keys_reported_never_regress(self):
        report = diff_numeric({"cells": 4}, {"cells": 400})
        (row,) = report["rows"]
        assert row["direction"] == 0 and not row["regressed"]
        assert report["regressions"] == []

    def test_zero_baseline(self):
        report = diff_numeric({"misses": 0}, {"misses": 3})
        (row,) = report["rows"]
        assert row["delta"] == float("inf") and row["regressed"]

    def test_disjoint_keys_surface(self):
        report = diff_numeric({"a_s": 1}, {"b_s": 2})
        assert report["only_a"] == ["a_s"] and report["only_b"] == ["b_s"]


class TestRendering:
    def test_history_lines_and_offsets(self):
        rows = [entry(label=f"run-{i}", when=1_700_000_000 + i)
                for i in range(2)]
        text = format_history(rows, corrupt=1)
        assert "[ -2]" in text and "[ -1]" in text
        assert "run-0" in text and "run-1" in text
        assert "1 corrupt line(s) skipped" in text
        assert format_history([], 0) == "(empty ledger)"

    def test_format_diff_verdict(self):
        report = diff_numeric({"wall_time_s": 1.0}, {"wall_time_s": 2.0})
        text = format_diff(report)
        assert "REGRESSED" in text and "1 regression(s)" in text
        clean = format_diff(diff_numeric({"wall_time_s": 1.0},
                                         {"wall_time_s": 1.0}))
        assert "no regressions" in clean
