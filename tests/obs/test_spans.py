"""Span recorder: deterministic ids, nesting, grafting, serialisation."""

import pytest

from repro.obs.spans import Span, SpanRecorder, spans_from_jsonl

pytestmark = pytest.mark.obs


def test_ids_monotonic_from_one():
    recorder = SpanRecorder()
    spans = [recorder.begin(f"s{i}") for i in range(3)]
    assert [s.span_id for s in spans] == [1, 2, 3]


def test_nested_spans_parent_implicitly():
    recorder = SpanRecorder()
    with recorder.span("sweep") as outer:
        with recorder.span("cell", x=1) as cell:
            with recorder.span("measure") as inner:
                pass
    assert outer.parent_id is None
    assert cell.parent_id == outer.span_id
    assert inner.parent_id == cell.span_id
    assert all(s.end_s is not None for s in recorder.spans)


def test_end_closes_unclosed_children():
    recorder = SpanRecorder()
    outer = recorder.begin("outer")
    inner = recorder.begin("inner")
    recorder.end(outer)
    assert inner.end_s is not None
    assert recorder.current() is None


def test_explicit_parent_override():
    recorder = SpanRecorder()
    root = recorder.begin("root")
    recorder.end(root)
    sibling = recorder.begin("sibling", parent_id=root.span_id)
    assert sibling.parent_id == root.span_id


def test_events_attach_to_innermost_open_span():
    recorder = SpanRecorder()
    with recorder.span("sweep"):
        with recorder.span("cell"):
            recorder.event("cache_hit", index=0)
        recorder.event("cache_miss", index=1)
    cell = recorder.of_name("cell")[0]
    sweep = recorder.of_name("sweep")[0]
    assert [e.name for e in cell.events] == ["cache_hit"]
    assert [e.name for e in sweep.events] == ["cache_miss"]
    # No open span: event is a no-op, not an error.
    assert recorder.event("orphan") is None


def test_duration_and_children_helpers():
    recorder = SpanRecorder()
    with recorder.span("a") as a:
        with recorder.span("b"):
            pass
    assert a.duration_s >= 0.0
    assert [s.name for s in recorder.children_of(a)] == ["b"]
    assert recorder.get(a.span_id) is a
    assert len(recorder) == 2


def test_jsonl_round_trip(tmp_path):
    recorder = SpanRecorder()
    with recorder.span("sweep", tag="t"):
        with recorder.span("cell", x=3):
            recorder.event("cache_miss", index=0)
    path = tmp_path / "spans.jsonl"
    recorder.write_jsonl(path)
    reloaded = spans_from_jsonl(path)
    assert [s.to_dict() for s in reloaded] == [s.to_dict() for s in recorder.spans]


def test_graft_reids_remaps_and_reparents():
    worker = SpanRecorder(process="worker-1")
    with worker.span("cell", x=1):
        with worker.span("measure"):
            pass
    parent = SpanRecorder()
    sweep = parent.begin("sweep")
    grafted = parent.graft(worker.to_rows(), process="worker-1")
    parent.end(sweep)

    cell, measure = grafted
    assert cell.span_id == 2 and measure.span_id == 3  # fresh monotonic ids
    assert cell.parent_id == sweep.span_id  # batch root re-parented
    assert measure.parent_id == cell.span_id  # intra-batch link remapped
    assert all(s.process == "worker-1" for s in grafted)


def test_graft_accepts_span_objects():
    parent = SpanRecorder()
    span = Span(span_id=7, name="cell", start_s=1.0, end_s=2.0)
    grafted = parent.graft([span], process="w")
    assert grafted[0].span_id == 1 and grafted[0].parent_id is None


def test_structure_ignores_time_process_and_ids():
    def build(process):
        recorder = SpanRecorder(process=process)
        with recorder.span("sweep", tag="t"):
            with recorder.span("cell", x=1):
                recorder.event("cache_miss", index=0)
        return recorder

    assert build("main").structure() == build("worker-9").structure()


def test_structure_serial_equals_grafted():
    serial = SpanRecorder()
    with serial.span("sweep"):
        with serial.span("cell", x=1):
            pass
        with serial.span("cell", x=2):
            pass

    worker_a = SpanRecorder(process="worker-a")
    with worker_a.span("cell", x=1):
        pass
    worker_b = SpanRecorder(process="worker-b")
    with worker_b.span("cell", x=2):
        pass
    parent = SpanRecorder()
    sweep = parent.begin("sweep")
    parent.graft(worker_a.to_rows(), process="worker-a")
    parent.graft(worker_b.to_rows(), process="worker-b")
    parent.end(sweep)

    assert parent.structure() == serial.structure()
