"""Tests for trace/metrics export."""

import json

import pytest

from repro.core.task import Job, PeriodicTask
from repro.trace.export import (
    metrics_to_dict,
    metrics_to_json,
    trace_from_csv,
    trace_from_json,
    trace_to_csv,
    trace_to_dicts,
    trace_to_json,
)
from repro.trace.metrics import compute_metrics
from repro.trace.recorder import TraceRecorder


def sample_trace():
    trace = TraceRecorder()
    trace.record(0, "release", job="a#0")
    trace.record(5, "dispatch", job="a#0", cpu=1)
    trace.record(20, "finish", job="a#0", cpu=1, info="done")
    return trace


def test_json_roundtrip():
    trace = sample_trace()
    rebuilt = trace_from_json(trace_to_json(trace))
    assert trace_to_dicts(rebuilt) == trace_to_dicts(trace)


def test_json_is_valid_and_ordered():
    data = json.loads(trace_to_json(sample_trace(), indent=2))
    assert [row["time"] for row in data] == [0, 5, 20]
    assert data[1]["cpu"] == 1


def test_csv_has_header_and_rows():
    text = trace_to_csv(sample_trace())
    lines = text.strip().splitlines()
    assert lines[0] == "time,kind,job,cpu,info"
    assert len(lines) == 4
    assert "finish" in lines[3]


def test_csv_roundtrip():
    trace = sample_trace()
    rebuilt = trace_from_csv(trace_to_csv(trace))
    assert trace_to_dicts(rebuilt) == trace_to_dicts(trace)


def test_csv_roundtrip_matches_json_roundtrip():
    # Empty cells must map back to None, exactly as JSON null does.
    trace = TraceRecorder()
    trace.record(0, "tick", cpu=0)          # no job, no info
    trace.record(3, "release", job="a#0")   # no cpu
    trace.record(7, "irq", cpu=1, info="timer")
    via_csv = trace_from_csv(trace_to_csv(trace))
    via_json = trace_from_json(trace_to_json(trace))
    assert trace_to_dicts(via_csv) == trace_to_dicts(via_json)
    assert via_csv.events[0].job is None
    assert via_csv.events[1].cpu is None


def test_csv_rejects_foreign_header():
    with pytest.raises(ValueError):
        trace_from_csv("a,b,c\n1,2,3\n")


def test_metrics_export():
    job = Job(PeriodicTask(name="t", wcet=10, period=100, promotion=0), release=0)
    job.remaining = 0
    job.record_finish(30)
    metrics = compute_metrics([job], horizon=100)
    data = metrics_to_dict(metrics)
    assert data["finished_jobs"] == 1
    assert data["response"]["t"]["mean"] == 30
    parsed = json.loads(metrics_to_json(metrics))
    assert parsed == json.loads(json.dumps(data))
