"""Tests for trace recording, metrics and Gantt rendering."""

import pytest

from repro.core.task import AperiodicTask, Job, PeriodicTask
from repro.trace.gantt import render_gantt, render_interval_table, render_legend
from repro.trace.metrics import ResponseStats, compute_metrics
from repro.trace.recorder import TraceEvent, TraceRecorder


def task(name="t", wcet=10, period=100):
    return PeriodicTask(name=name, wcet=wcet, period=period, promotion=0)


class TestRecorder:
    def test_record_and_query(self):
        trace = TraceRecorder()
        trace.record(10, "release", job="a#0")
        trace.record(20, "dispatch", job="a#0", cpu=0)
        trace.record(30, "finish", job="a#0", cpu=0)
        assert len(trace) == 3
        assert [e.kind for e in trace.of_job("a#0")] == ["release", "dispatch", "finish"]
        assert len(trace.of_kind("dispatch")) == 1
        assert len(trace.between(15, 25)) == 1

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            TraceRecorder().record(0, "explode")

    def test_disabled_recorder_drops_events(self):
        trace = TraceRecorder(enabled=False)
        trace.record(0, "release", job="a")
        assert len(trace) == 0

    def test_busy_intervals_reconstruction(self):
        trace = TraceRecorder()
        trace.record(0, "dispatch", job="a#0", cpu=0)
        trace.record(10, "preempt", job="a#0", cpu=0)
        trace.record(10, "dispatch", job="b#0", cpu=0)
        trace.record(25, "finish", job="b#0", cpu=0)
        intervals = trace.busy_intervals(30)
        assert intervals[0] == [(0, 10, "a#0"), (10, 25, "b#0")]

    def test_open_interval_closed_at_horizon(self):
        trace = TraceRecorder()
        trace.record(5, "dispatch", job="a#0", cpu=1)
        intervals = trace.busy_intervals(50)
        assert intervals[1] == [(5, 50, "a#0")]

    def test_event_str(self):
        event = TraceEvent(time=42, kind="irq", cpu=1, info="timer")
        text = str(event)
        assert "42" in text and "irq" in text and "timer" in text

    def test_dump_limit(self):
        trace = TraceRecorder()
        for i in range(10):
            trace.record(i, "tick")
        assert len(trace.dump(limit=3).splitlines()) == 3


class TestMetrics:
    def _finished_job(self, name, release, finish, wcet=10, period=1000):
        job = Job(task(name, wcet=wcet, period=period), release=release)
        job.remaining = 0
        job.record_finish(finish)
        return job

    def test_response_stats(self):
        jobs = [
            self._finished_job("a", 0, 30),
            self._finished_job("a", 100, 120),
        ]
        stats = ResponseStats.from_jobs("a", jobs)
        assert stats.mean == 25
        assert stats.minimum == 20
        assert stats.maximum == 30
        assert stats.count == 2

    def test_response_stats_empty_raises(self):
        with pytest.raises(ValueError):
            ResponseStats.from_jobs("a", [])

    def test_compute_metrics_counts(self):
        miss = self._finished_job("late", 0, 2_000)
        ok = self._finished_job("ok", 0, 10)
        metrics = compute_metrics([miss, ok], horizon=5_000)
        assert metrics.finished_jobs == 2
        assert metrics.deadline_misses == 1
        assert set(metrics.response) == {"late", "ok"}

    def test_response_of_unknown_task(self):
        metrics = compute_metrics([], horizon=100)
        with pytest.raises(KeyError):
            metrics.response_of("ghost")

    def test_per_cpu_busy_from_trace(self):
        trace = TraceRecorder()
        trace.record(0, "dispatch", job="a#0", cpu=0)
        trace.record(40, "finish", job="a#0", cpu=0)
        metrics = compute_metrics([], horizon=100, trace=trace)
        assert metrics.per_cpu_busy[0] == 40
        assert metrics.cpu_utilization(0) == pytest.approx(0.4)
        assert metrics.cpu_utilization(3) == 0.0


class TestGantt:
    def _trace(self):
        trace = TraceRecorder()
        trace.record(0, "dispatch", job="alpha#0", cpu=0)
        trace.record(50, "finish", job="alpha#0", cpu=0)
        trace.record(0, "dispatch", job="beta#0", cpu=1)
        trace.record(100, "finish", job="beta#0", cpu=1)
        return trace

    def test_render_gantt_shape(self):
        text = render_gantt(self._trace(), horizon=100, slot=10, n_cpus=2)
        lines = text.splitlines()
        assert lines[0].startswith("cpu0")
        assert lines[1].startswith("cpu1")
        assert "A" in lines[0]
        assert "B" in lines[1]
        # cpu0 idle in the second half.
        assert "." in lines[0]

    def test_render_gantt_validation(self):
        with pytest.raises(ValueError):
            render_gantt(self._trace(), horizon=100, slot=0, n_cpus=2)
        with pytest.raises(ValueError):
            render_gantt(self._trace(), horizon=0, slot=10, n_cpus=2)

    def test_interval_table(self):
        text = render_interval_table(self._trace(), horizon=100, n_cpus=2)
        assert "alpha#0" in text and "beta#0" in text

    def test_legend(self):
        text = render_legend(self._trace())
        assert "A = alpha" in text
        assert "B = beta" in text
