"""Property-based end-to-end invariants (hypothesis).

Random schedulable task sets through the theoretical simulator; the
paper's guarantees must hold on every one:

- no periodic deadline is ever missed when the offline test passed;
- jobs are conserved (everything released either finished or is still
  in flight at the horizon -- nothing lost, nothing duplicated);
- response times are bounded below by execution times;
- the policy's structural invariants hold at the end of the run.
"""

from hypothesis import HealthCheck, assume, given, settings, strategies as st

from repro.analysis import assign_promotions, partition
from repro.analysis.partitioning import PartitioningError
from repro.analysis.taskgen import random_taskset
from repro.core.task import AperiodicTask, TaskSet
from repro.simulators.theoretical import TheoreticalSimulator

TICK = 10_000
SLOW = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)


def build(seed, n_cpus, utilization, with_aperiodic):
    base = random_taskset(
        5,
        utilization * n_cpus,
        seed=seed,
        n_aperiodic=1 if with_aperiodic else 0,
        aperiodic_wcet=40_000,
        min_period=100_000,
        max_period=600_000,
    )
    try:
        ts = partition(base, n_cpus)
        return assign_promotions(ts, n_cpus, tick=TICK)
    except (PartitioningError, ValueError):
        # The heuristic may fail, or the tick-aware analysis may reject
        # a draw (W + tick > D); the guarantee only covers accepted sets.
        assume(False)


@SLOW
@given(
    seed=st.integers(0, 5_000),
    n_cpus=st.integers(1, 4),
    utilization=st.floats(0.2, 0.55),
)
def test_no_deadline_misses_on_analysed_sets(seed, n_cpus, utilization):
    ts = build(seed, n_cpus, utilization, with_aperiodic=False)
    sim = TheoreticalSimulator(ts, n_cpus, tick=TICK, overhead=0.0)
    sim.run(2_000_000)
    assert not [j for j in sim.finished_jobs if j.missed_deadline]
    sim.policy.check_invariants()


@SLOW
@given(
    seed=st.integers(0, 5_000),
    n_cpus=st.integers(2, 3),
    arrival=st.integers(0, 1_000_000),
)
def test_job_conservation(seed, n_cpus, arrival):
    ts = build(seed, n_cpus, 0.4, with_aperiodic=True)
    sim = TheoreticalSimulator(
        ts, n_cpus, tick=TICK, overhead=0.0,
        aperiodic_arrivals={"a0": [arrival]},
    )
    horizon = 2_000_000
    sim.run(horizon)

    in_flight = (
        len(sim.policy.periodic_ready)
        + len(sim.policy.aperiodic_ready)
        + sum(len(q) for q in sim.policy.local)
        + sum(1 for j in sim.policy.running if j is not None)
    )
    # Every periodic task contributes exactly (finished + in-flight +
    # parked) jobs, one live instance each.
    finished_periodic = sum(1 for j in sim.finished_jobs if j.is_periodic)
    parked = len(sim.policy.waiting)
    finished_aperiodic = len(sim.finished_jobs) - finished_periodic
    released = sim.policy.released_count

    # Parked + in-flight + finished periodic = releases + parked-but-
    # never-released (each task always has exactly one pending job).
    assert parked + in_flight + len(sim.finished_jobs) >= released
    assert finished_aperiodic <= 1
    # No duplicate jobs anywhere.
    sim.policy.check_invariants()

    for job in sim.finished_jobs:
        assert job.remaining == 0
        assert job.response_time >= job.task.acet


@SLOW
@given(seed=st.integers(0, 5_000))
def test_aperiodic_never_blocks_hard_deadlines(seed):
    """Flood the system with aperiodic arrivals: periodic deadlines
    must still all hold (the point of the promotion mechanism)."""
    ts = build(seed, 2, 0.45, with_aperiodic=True)
    arrivals = list(range(50_000, 1_900_000, 150_000))
    sim = TheoreticalSimulator(
        ts, 2, tick=TICK, overhead=0.0, aperiodic_arrivals={"a0": arrivals}
    )
    sim.run(2_000_000)
    assert not [
        j for j in sim.finished_jobs if j.is_periodic and j.missed_deadline
    ]


@SLOW
@given(
    seed=st.integers(0, 5_000),
    utilization=st.floats(0.2, 0.5),
)
def test_response_time_upper_bound_from_analysis(seed, utilization):
    """Every periodic response time is bounded by the offline W_i...
    once promoted the task runs at fixed priority on its home cpu, so
    finish <= promotion + W = release + U + (D - U) = release + D.
    The sharper bound finish <= release + D is exactly deadline
    satisfaction, but we can also check W directly for promoted jobs."""
    ts = build(seed, 2, utilization, with_aperiodic=False)
    sim = TheoreticalSimulator(ts, 2, tick=TICK, overhead=0.0)
    sim.run(1_500_000)
    by_name = {t.name: t for t in ts.periodic}
    for job in sim.finished_jobs:
        task = by_name[job.task.name]
        assert job.finish_time <= job.release + task.deadline
