"""Cross-simulator consistency.

The three MPDP implementations (uniprocessor reference, theoretical
multiprocessor, full-system prototype) must agree wherever their
modelling assumptions coincide.  These tests pin those equivalences:

- on one processor, with tick-aligned periods and tick-rounded
  promotions, the theoretical simulator reproduces the uniprocessor
  dual-priority reference *exactly*;
- with hardware effects dialled to (near) zero, the prototype's
  response times approach the theoretical simulator's.
"""

import pytest

from repro.analysis import assign_promotions, partition, random_taskset
from repro.core.dual_priority import DualPrioritySimulator
from repro.core.task import AperiodicTask, PeriodicTask, TaskSet
from repro.hw.microblaze import ExecutionProfile
from repro.kernel.costs import KernelCosts
from repro.kernel.microkernel import TaskBinding
from repro.simulators.prototype import PrototypeConfig, PrototypeSimulator
from repro.simulators.theoretical import TheoreticalSimulator
from repro.trace.metrics import compute_metrics

TICK = 10_000


def tick_aligned_taskset(seed):
    """Random set with periods that are exact tick multiples."""
    base = random_taskset(
        5, 0.6, seed=seed, min_period=100_000, max_period=500_000,
    )
    periodic = [
        PeriodicTask(
            name=t.name,
            wcet=t.wcet,
            period=(t.period // TICK) * TICK,
            low_priority=t.low_priority,
            high_priority=t.high_priority,
        )
        for t in base.periodic
    ]
    ts = TaskSet(periodic)
    return assign_promotions(ts, 1, tick=TICK)


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_theoretical_matches_uniprocessor_reference(seed):
    ts = tick_aligned_taskset(seed)
    horizon = 2_000_000

    reference = DualPrioritySimulator(ts)
    reference.run(horizon)
    ref_finishes = sorted(
        (j.task.name, j.release, j.finish_time) for j in reference.finished
    )

    theo = TheoreticalSimulator(ts, 1, tick=TICK, overhead=0.0)
    theo.run(horizon)
    theo_finishes = sorted(
        (j.task.name, j.release, j.finish_time) for j in theo.finished_jobs
    )

    assert theo_finishes == ref_finishes


def test_prototype_approaches_theoretical_without_hardware_effects():
    """Strip (almost) all physical overheads from the prototype: the
    remaining gap to the idealised simulator must be small."""
    ts = TaskSet(
        [
            PeriodicTask(name="p1", wcet=200_000, period=2_000_000),
            PeriodicTask(name="p2", wcet=300_000, period=3_000_000),
        ],
        [AperiodicTask(name="evt", wcet=400_000)],
    ).with_deadline_monotonic_priorities()
    ts = partition(ts, 2)
    ts = assign_promotions(ts, 2, tick=100_000)
    arrivals = {"evt": [500_000]}
    horizon = 6_000_000

    theo = TheoreticalSimulator(ts, 2, tick=100_000, overhead=0.0,
                                aperiodic_arrivals=arrivals)
    theo.run(horizon)
    theo_resp = compute_metrics(theo.finished_jobs, horizon).response_of("evt").mean

    no_traffic = ExecutionProfile(access_period=10_000_000, access_words=1)
    bindings = {name: TaskBinding(profile=no_traffic, stack_words=0)
                for name in ("p1", "p2", "evt")}
    tiny = KernelCosts(
        irq_entry=1, irq_exit=1, scheduler_base=1, scheduler_per_job=1,
        queue_op_words=1, aperiodic_release=1, completion=1, ipi_raise=1,
        context_primitive=1, regfile_words=1,
    )
    proto = PrototypeSimulator(
        ts,
        PrototypeConfig(n_cpus=2, tick=100_000, scale=1, costs=tiny),
        bindings=bindings,
        aperiodic_arrivals=arrivals,
    )
    proto.run(horizon)
    proto_resp = compute_metrics(proto.finished_jobs, horizon).response_of("evt").mean

    assert proto_resp == pytest.approx(theo_resp, rel=0.02)


def test_prototype_and_theoretical_same_schedulability_verdict():
    """Both must finish the same jobs with zero misses on the same
    analysed set (the decisions come from the same policy)."""
    base = random_taskset(6, 1.0, seed=9, min_period=200_000, max_period=800_000)
    ts = partition(base, 2)
    ts = assign_promotions(ts, 2, tick=TICK)
    horizon = 3_000_000

    theo = TheoreticalSimulator(ts, 2, tick=TICK, overhead=0.0)
    theo.run(horizon)
    proto = PrototypeSimulator(ts, PrototypeConfig(n_cpus=2, tick=TICK, scale=1))
    proto.run(horizon)

    assert not [j for j in theo.finished_jobs if j.missed_deadline]
    assert not [j for j in proto.finished_jobs if j.missed_deadline]
    # Same job population within one period's slack.
    assert abs(len(theo.finished_jobs) - len(proto.finished_jobs)) <= len(ts.periodic)
