"""Failure injection: the system must degrade gracefully, not wedge.

Injected faults:

- *optimistic analysis*: promotions computed from understated WCETs
  (a task runs longer than its budget) -- deadline misses must be
  detected and reported, and the system must keep scheduling;
- *interrupt flood*: a peripheral raising frames far faster than the
  service rate -- no deadlock, all hard deadlines still met;
- *unacknowledged interrupts*: a processor stuck with interrupts
  disabled -- the MPIC timeout must reroute around it;
- *bus hog*: a rogue master saturating the OPB -- other masters make
  progress (no starvation for higher-priority ports).
"""

import pytest

from repro.analysis import assign_promotions, partition
from repro.core.task import AperiodicTask, PeriodicTask, TaskSet
from repro.hw.bus import OPBBus
from repro.hw.memory import DDRMemory
from repro.hw.soc import SoC, SoCConfig
from repro.kernel import DualPriorityMicrokernel
from repro.sim import Simulator
from repro.simulators.theoretical import TheoreticalSimulator
from repro.trace import TraceRecorder

TICK = 20_000


def test_optimistic_analysis_misses_are_detected_not_fatal():
    # Promotions computed as if the tasks were half their real size:
    # the guarantee is void, but the scheduler must keep running and
    # report the misses honestly.
    lying = TaskSet([
        PeriodicTask(name="a", wcet=30_000, period=100_000, deadline=50_000,
                     low_priority=1, high_priority=1, cpu=0,
                     promotion=45_000),  # as if W were only 15_000
        PeriodicTask(name="b", wcet=30_000, period=100_000, deadline=50_000,
                     low_priority=0, high_priority=0, cpu=0,
                     promotion=45_000),
    ])
    sim = TheoreticalSimulator(lying, 1, tick=TICK, overhead=0.0)
    sim.run(500_000)
    misses = [j for j in sim.finished_jobs if j.missed_deadline]
    assert misses, "the injected optimism must surface as misses"
    # The system kept going: jobs from late releases still completed.
    assert max(j.release for j in sim.finished_jobs) >= 400_000
    sim.policy.check_invariants()


def test_interrupt_flood_does_not_break_hard_guarantees():
    ts = TaskSet(
        [
            PeriodicTask(name="hard1", wcet=10_000, period=100_000),
            PeriodicTask(name="hard2", wcet=15_000, period=150_000),
        ],
        [AperiodicTask(name="flood", wcet=2_000)],
    ).with_deadline_monotonic_priorities()
    ts = partition(ts, 2)
    ts = assign_promotions(ts, 2, tick=TICK)

    soc = SoC(SoCConfig(n_cpus=2, tick_cycles=TICK, chunk_cycles=1_000))
    soc.add_can_interface("can0", task_name="flood")
    # One frame every 2_500 cycles: far above the sustainable rate.
    soc.peripherals["can0"].program_frames(list(range(50_000, 450_000, 2_500)))
    trace = TraceRecorder()
    kernel = DualPriorityMicrokernel(soc, ts, trace=trace)
    kernel.run(until=1_000_000)

    periodic_misses = [
        j for j in kernel.finished_jobs if j.is_periodic and j.missed_deadline
    ]
    assert periodic_misses == []
    # The flood was not silently dropped either.
    assert kernel.aperiodic_releases > 50
    kernel.policy.check_invariants()


def test_stuck_cpu_rerouted_by_mpic_timeout():
    soc = SoC(SoCConfig(n_cpus=2, mpic_ack_timeout=300))
    source = soc.intc.add_source("dev")
    # cpu0 wedges with interrupts enabled but never acknowledges.
    soc.intc.raise_interrupt(source)
    assert soc.intc.pending_for(0) == 1
    soc.sim.run(until=400)
    assert soc.intc.pending_for(0) == 0
    assert soc.intc.pending_for(1) == 1
    assert soc.intc.timeouts == 1
    _src, _payload = soc.intc.acknowledge(1)


def test_bus_hog_cannot_starve_higher_priority_master():
    sim = Simulator()
    bus = OPBBus(sim)
    ddr = DDRMemory()
    finished = {}

    def hog():
        while sim.now < 50_000:
            yield from bus.transfer(3, ddr, words=8)  # back-to-back

    def victim():
        for _ in range(100):
            yield from bus.transfer(0, ddr, words=1)
            yield sim.timeout(5)
        finished["victim"] = sim.now

    sim.process(hog())
    sim.process(victim())
    sim.run(until=60_000)
    assert "victim" in finished
    # Victim's mean wait is bounded by one in-flight hog transaction.
    assert bus.stats.mean_wait(0) <= ddr.access_latency(8)


def test_kernel_survives_aperiodic_for_unknown_peripheral():
    """A peripheral with no task payload must be acknowledged and
    dropped, not crash the service loop."""
    ts = TaskSet([PeriodicTask(name="p", wcet=5_000, period=100_000)])
    ts = assign_promotions(partition(ts, 1), 1, tick=TICK)
    soc = SoC(SoCConfig(n_cpus=1, tick_cycles=TICK))
    rogue = soc.intc.add_source("rogue")
    soc.sim.schedule(30_000, lambda: soc.intc.raise_interrupt(rogue, payload={"kind": "???"}))
    kernel = DualPriorityMicrokernel(soc, ts)
    kernel.run(until=300_000)
    assert kernel.finished_jobs  # still scheduling
    assert kernel.irqs_serviced >= 2
