"""Property-based invariants of the OPB arbitration (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.hw.bus import OPBBus
from repro.hw.memory import DDRMemory
from repro.sim import Simulator


@settings(max_examples=40, deadline=None)
@given(
    plan=st.lists(
        st.tuples(
            st.integers(0, 3),     # master id
            st.integers(0, 200),   # start delay
            st.integers(1, 8),     # words
            st.integers(1, 5),     # transactions
        ),
        min_size=1,
        max_size=6,
    )
)
def test_bus_work_conservation(plan):
    """Whatever the request pattern: every transaction completes, the
    busy time equals the sum of transaction latencies, and the bus is
    idle at the end."""
    sim = Simulator()
    bus = OPBBus(sim)
    ddr = DDRMemory()
    expected_busy = 0
    expected_txn = 0
    completions = []

    def master(mid, delay, words, count):
        yield sim.timeout(delay)
        for _ in range(count):
            yield from bus.transfer(mid, ddr, words=words)
        completions.append(mid)

    for mid, delay, words, count in plan:
        expected_busy += ddr.access_latency(words) * count
        expected_txn += count
        sim.process(master(mid, delay, words, count))
    sim.run()

    assert len(completions) == len(plan)
    assert bus.stats.transactions == expected_txn
    assert bus.stats.busy_cycles == expected_busy
    assert not bus.busy
    assert bus.queue_length == 0
    # Total elapsed covers at least the serialised busy time.
    assert sim.now >= expected_busy


@settings(max_examples=40, deadline=None)
@given(
    delays=st.lists(st.integers(0, 500), min_size=2, max_size=20),
)
def test_event_time_monotonicity(delays):
    """Observed callback times never decrease, whatever the schedule."""
    sim = Simulator()
    observed = []
    for delay in delays:
        sim.schedule(delay, lambda: observed.append(sim.now))
    sim.run()
    assert observed == sorted(observed)
    assert len(observed) == len(delays)
    assert sim.now == max(delays)


@settings(max_examples=30, deadline=None)
@given(
    holds=st.lists(st.integers(1, 50), min_size=2, max_size=8),
)
def test_fixed_priority_never_inverts_simultaneous_requests(holds):
    """When all masters request at t=0, grants follow master id order."""
    sim = Simulator()
    bus = OPBBus(sim)
    ddr = DDRMemory()
    order = []

    def master(mid, words):
        yield from bus.transfer(mid, ddr, words=words)
        order.append(mid)

    for mid, words in enumerate(holds):
        sim.process(master(mid, min(8, words)))
    sim.run()
    assert order == sorted(order)
