"""Tests for the synchronization engine, crossbar and system timer."""

import pytest

from repro.hw.crossbar import Crossbar
from repro.hw.intc import InterruptMode, MultiprocessorInterruptController
from repro.hw.sync_engine import SynchronizationEngine
from repro.hw.timer import SystemTimer
from repro.sim import Simulator


class TestSyncEngine:
    def test_free_lock_granted_immediately(self):
        sim = Simulator()
        engine = SynchronizationEngine(sim)
        grant = engine.acquire(0, cpu=0)
        assert grant.triggered
        assert engine.owner(0) == 0

    def test_contended_lock_fifo_handover(self):
        sim = Simulator()
        engine = SynchronizationEngine(sim)
        engine.acquire(0, cpu=0)
        second = engine.acquire(0, cpu=1)
        third = engine.acquire(0, cpu=2)
        assert not second.triggered
        engine.release(0, cpu=0)
        assert second.triggered
        assert engine.owner(0) == 1
        engine.release(0, cpu=1)
        assert third.triggered

    def test_mutual_exclusion_invariant(self):
        sim = Simulator()
        engine = SynchronizationEngine(sim)
        engine.acquire(0, cpu=0)
        assert not engine.try_acquire(0, cpu=1)
        engine.release(0, cpu=0)
        assert engine.try_acquire(0, cpu=1)

    def test_reacquire_by_owner_raises(self):
        sim = Simulator()
        engine = SynchronizationEngine(sim)
        engine.acquire(0, cpu=0)
        with pytest.raises(RuntimeError):
            engine.acquire(0, cpu=0)

    def test_release_by_non_owner_raises(self):
        sim = Simulator()
        engine = SynchronizationEngine(sim)
        engine.acquire(0, cpu=0)
        with pytest.raises(RuntimeError):
            engine.release(0, cpu=1)

    def test_lock_id_range_checked(self):
        engine = SynchronizationEngine(Simulator(), n_locks=4)
        with pytest.raises(ValueError):
            engine.acquire(4, cpu=0)

    def test_contention_stats(self):
        sim = Simulator()
        engine = SynchronizationEngine(sim)
        engine.acquire(0, cpu=0)
        engine.acquire(0, cpu=1)
        assert engine.acquisitions == 1
        assert engine.contended_acquisitions == 1

    def test_barrier_releases_all_at_width(self):
        sim = Simulator()
        engine = SynchronizationEngine(sim)
        engine.configure_barrier(0, width=3)
        a = engine.barrier_wait(0, cpu=0)
        b = engine.barrier_wait(0, cpu=1)
        assert not a.triggered and not b.triggered
        assert engine.barrier_count(0) == 2
        c = engine.barrier_wait(0, cpu=2)
        assert a.triggered and b.triggered and c.triggered
        assert engine.barrier_count(0) == 0

    def test_barrier_reusable_after_release(self):
        sim = Simulator()
        engine = SynchronizationEngine(sim)
        engine.configure_barrier(0, width=2)
        engine.barrier_wait(0, 0)
        engine.barrier_wait(0, 1)
        again = engine.barrier_wait(0, 0)
        assert not again.triggered

    def test_unconfigured_barrier_raises(self):
        engine = SynchronizationEngine(Simulator())
        with pytest.raises(RuntimeError):
            engine.barrier_wait(0, 0)

    def test_barrier_width_validation(self):
        engine = SynchronizationEngine(Simulator())
        with pytest.raises(ValueError):
            engine.configure_barrier(0, width=0)
        with pytest.raises(ValueError):
            engine.configure_barrier(99, width=2)


class TestCrossbar:
    def test_send_receive_roundtrip(self):
        sim = Simulator()
        xbar = Crossbar(sim, n_ports=2)
        got = []

        def sender():
            yield from xbar.send(0, 1, word=0xAB)

        def receiver():
            value = yield xbar.receive(0, 1)
            got.append((sim.now, value))

        sim.process(receiver())
        sim.process(sender())
        sim.run()
        assert got == [(Crossbar.WORD_LATENCY, 0xAB)]

    def test_channels_are_independent(self):
        sim = Simulator()
        xbar = Crossbar(sim, n_ports=3)

        def send(src, dst, word):
            yield from xbar.send(src, dst, word)

        sim.process(send(0, 1, "a"))
        sim.process(send(2, 1, "b"))
        sim.run()
        assert xbar.depth(0, 1) == 1
        assert xbar.depth(2, 1) == 1
        assert xbar.words_sent == 2

    def test_no_loopback(self):
        xbar = Crossbar(Simulator(), n_ports=2)
        with pytest.raises(ValueError):
            xbar.receive(1, 1)

    def test_port_range(self):
        xbar = Crossbar(Simulator(), n_ports=2)
        with pytest.raises(ValueError):
            xbar.receive(0, 5)


class TestSystemTimer:
    def test_periodic_ticks_raise_interrupts(self):
        sim = Simulator()
        intc = MultiprocessorInterruptController(sim, 1)
        seen = []
        intc.connect_cpu(0, lambda asserted: seen.append((sim.now, asserted)))
        timer = SystemTimer(sim, intc, period=100)
        timer.start(first_tick=0)
        sim.run(until=250)
        assert timer.ticks == 3  # at 0, 100, 200
        # One offer is asserted; the rest queue in the controller until
        # the first is acknowledged (one pending offer per cpu).
        assert intc.pending_for(0) == 1
        for _ in range(3):
            intc.acknowledge(0)
            intc.complete(0)
        assert intc.delivered == 3

    def test_first_tick_default_one_period(self):
        sim = Simulator()
        intc = MultiprocessorInterruptController(sim, 1)
        timer = SystemTimer(sim, intc, period=100)
        timer.start()
        sim.run(until=99)
        assert timer.ticks == 0
        sim.run(until=100)
        assert timer.ticks == 1

    def test_stop_suppresses_future_ticks(self):
        sim = Simulator()
        intc = MultiprocessorInterruptController(sim, 1)
        timer = SystemTimer(sim, intc, period=50)
        timer.start(first_tick=0)
        sim.run(until=60)
        timer.stop()
        sim.run(until=500)
        assert timer.ticks == 2

    def test_double_start_rejected(self):
        sim = Simulator()
        intc = MultiprocessorInterruptController(sim, 1)
        timer = SystemTimer(sim, intc, period=50)
        timer.start()
        with pytest.raises(RuntimeError):
            timer.start()

    def test_invalid_period(self):
        sim = Simulator()
        intc = MultiprocessorInterruptController(sim, 1)
        with pytest.raises(ValueError):
            SystemTimer(sim, intc, period=0)

    def test_timer_payload_carries_tick(self):
        sim = Simulator()
        intc = MultiprocessorInterruptController(sim, 1)
        timer = SystemTimer(sim, intc, period=100)
        timer.start(first_tick=0)
        sim.run(until=10)
        _source, payload = intc.acknowledge(0)
        assert payload["kind"] == "timer"
        assert payload["tick"] == 1
