"""Tests for the IP-core offload device (booking use case)."""

import pytest

from repro.hw.bus import OPBBus
from repro.hw.intc import MultiprocessorInterruptController
from repro.hw.ipcore import IPCore
from repro.sim import Simulator


def setup(latency=1_000, compute=None):
    sim = Simulator()
    bus = OPBBus(sim)
    intc = MultiprocessorInterruptController(sim, 3)
    core = IPCore(sim, bus, intc, latency=latency, compute=compute)
    lines = [False] * 3
    for cpu in range(3):
        intc.connect_cpu(cpu, lambda asserted, c=cpu: lines.__setitem__(c, asserted))
    return sim, bus, intc, core, lines


def test_completion_interrupt_booked_to_submitter():
    sim, bus, intc, core, lines = setup()
    jobs = []

    def submitter():
        job = yield from core.submit(cpu=1, payload=21)
        jobs.append(job)

    sim.process(submitter())
    sim.run()
    job = jobs[0]
    assert job.done
    # Only the submitting processor sees the completion.
    assert lines == [False, True, False]
    source, payload = intc.acknowledge(1)
    assert payload["kind"] == "ipcore"
    assert payload["job"] == job.job_id


def test_compute_function_applied():
    sim, bus, intc, core, lines = setup(compute=lambda x: x * 2)
    results = []

    def flow():
        job = yield from core.submit(cpu=0, payload=21)
        yield sim.timeout(core.latency + 10)
        value = yield from core.read_back(0, job)
        results.append(value)

    sim.process(flow())
    sim.run()
    assert results == [42]


def test_latency_respected():
    sim, bus, intc, core, lines = setup(latency=5_000)
    jobs = []

    def submitter():
        job = yield from core.submit(cpu=0)
        jobs.append(job)

    sim.process(submitter())
    sim.run()
    job = jobs[0]
    assert job.completed_at - job.submitted_at == 5_000


def test_busy_core_rejects_second_submission():
    sim, bus, intc, core, lines = setup(latency=1_000)
    errors = []

    def first():
        yield from core.submit(cpu=0)

    def second():
        yield sim.timeout(100)
        try:
            yield from core.submit(cpu=1)
        except RuntimeError as exc:
            errors.append(str(exc))

    sim.process(first())
    sim.process(second())
    sim.run()
    assert errors and "busy" in errors[0]


def test_read_back_before_done_raises():
    sim, bus, intc, core, lines = setup()

    def flow():
        job = yield from core.submit(cpu=0)
        with pytest.raises(RuntimeError):
            yield from core.read_back(0, job)

    sim.process(flow())
    sim.run()


def test_invalid_latency():
    sim = Simulator()
    bus = OPBBus(sim)
    intc = MultiprocessorInterruptController(sim, 1)
    with pytest.raises(ValueError):
        IPCore(sim, bus, intc, latency=0)


def test_sequential_jobs_rebook():
    sim, bus, intc, core, lines = setup(latency=500)
    order = []

    def flow():
        job1 = yield from core.submit(cpu=2)
        yield sim.timeout(600)
        intc.acknowledge(2)
        intc.complete(2)
        order.append(job1.job_id)
        job2 = yield from core.submit(cpu=0)
        yield sim.timeout(600)
        intc.acknowledge(0)
        intc.complete(0)
        order.append(job2.job_id)

    sim.process(flow())
    sim.run()
    assert order == [0, 1]


def test_double_submit_guard_fires_at_call_time():
    """Satellite: the busy check runs when submit() is called, not at
    the first yield, so a driver bug surfaces at the call site."""
    sim, bus, intc, core, lines = setup(latency=1_000)
    first = core.submit(cpu=0)  # device marked busy immediately
    with pytest.raises(RuntimeError, match="busy"):
        core.submit(cpu=1)
    # The original submission still completes normally.
    jobs = []

    def driver():
        job = yield from first
        jobs.append(job)

    sim.process(driver())
    sim.run()
    assert jobs and jobs[0].done
