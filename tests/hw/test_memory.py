"""Tests for the memory models."""

import pytest

from repro.hw.memory import DDRMemory, LocalBRAM, MemoryError_, SharedBRAM


def test_local_bram_latency():
    mem = LocalBRAM(0)
    assert mem.access_latency(1) == 1
    assert mem.access_latency(8) == 8


def test_ddr_latency_first_word_dominates():
    ddr = DDRMemory()
    assert ddr.access_latency(1) == 12
    assert ddr.access_latency(4) == 12 + 3 * 2
    assert ddr.access_latency(8) == 12 + 7 * 2


def test_shared_bram_latency():
    bram = SharedBRAM()
    assert bram.access_latency(1) == 2
    assert bram.access_latency(4) == 5


def test_latency_rejects_zero_words():
    with pytest.raises(ValueError):
        DDRMemory().access_latency(0)


def test_read_write_roundtrip():
    ddr = DDRMemory()
    ddr.write_word(0x4000_0000, 0xDEADBEEF)
    assert ddr.read_word(0x4000_0000) == 0xDEADBEEF


def test_uninitialised_reads_zero():
    assert DDRMemory().read_word(0x4000_0100) == 0


def test_write_truncates_to_32_bits():
    ddr = DDRMemory()
    ddr.write_word(0x4000_0000, 0x1_2345_6789)
    assert ddr.read_word(0x4000_0000) == 0x2345_6789


def test_misaligned_access_rejected():
    ddr = DDRMemory()
    with pytest.raises(MemoryError_):
        ddr.read_word(0x4000_0002)


def test_out_of_range_rejected():
    local = LocalBRAM(0, size=1024)
    with pytest.raises(MemoryError_):
        local.read_word(2048)


def test_contains():
    local = LocalBRAM(0, size=1024, base=0)
    assert local.contains(0)
    assert local.contains(1020)
    assert not local.contains(1024)


def test_bulk_load():
    ddr = DDRMemory()
    ddr.load(0x4000_0000, [1, 2, 3])
    assert [ddr.read_word(0x4000_0000 + 4 * i) for i in range(3)] == [1, 2, 3]


def test_size_validation():
    with pytest.raises(ValueError):
        LocalBRAM(0, size=10)  # not a multiple of 4
