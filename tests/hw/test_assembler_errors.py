"""Negative-path assembler tests: every rejection names the offending
line and, where possible, suggests the fix."""

import pytest

from repro.hw.assembler import AssemblerError, assemble


def error_of(source):
    with pytest.raises(AssemblerError) as excinfo:
        assemble(source)
    return str(excinfo.value)


class TestLabelErrors:
    def test_duplicate_label_reports_both_lines(self):
        message = error_of("start:\n    nop\nstart:\n    halt")
        assert "line 3" in message
        assert "first defined on line 1" in message

    def test_duplicate_across_sections(self):
        message = error_of(
            ".data 0x40010000\nbuf: .word 0\n.text\nbuf:\n    halt"
        )
        assert "duplicate label 'buf'" in message

    def test_undefined_branch_label(self):
        message = error_of("    br nowhere\n    halt")
        assert "undefined code label 'nowhere'" in message

    def test_undefined_label_suggests_close_match(self):
        message = error_of("looop:\n    br loop\n    halt")
        assert "did you mean 'looop'?" in message

    def test_undefined_immediate_label_suggests_data_label(self):
        message = error_of(
            ".data 0x40010000\ntable: .word 1\n.text\n    lwi r3, r0, tabel\n    halt"
        )
        assert "did you mean 'table'?" in message

    def test_branch_to_data_label_is_distinguished(self):
        message = error_of(
            ".data 0x40010000\nbuf: .word 0\n.text\n    br buf\n    halt"
        )
        assert "data" in message and "not code" in message
        assert "defined on line 2" in message


class TestOperandErrors:
    def test_unknown_opcode(self):
        assert "unknown opcode 'frob'" in error_of("frob r1, r2")

    def test_bad_register_name(self):
        assert "expected register" in error_of("addi x3, r0, 1\nhalt")

    def test_register_out_of_range(self):
        assert "out of range" in error_of("addi r32, r0, 1\nhalt")

    def test_wrong_operand_count(self):
        assert "needs 3 registers" in error_of("add r1, r2\nhalt")

    def test_nullary_op_rejects_operands(self):
        assert "takes no operands" in error_of("halt r1")

    def test_bad_integer_literal(self):
        assert "bad integer" in error_of("addi r3, r0, 0xZZ\nhalt")


class TestSectionErrors:
    def test_word_outside_data(self):
        assert ".word outside .data" in error_of(".word 1 2 3")

    def test_space_outside_data(self):
        assert ".space outside .data" in error_of(".space 4")

    def test_first_data_needs_address(self):
        assert "first .data needs an address" in error_of(".data\nx: .word 1")

    def test_instruction_in_data_section(self):
        assert "instruction in .data section" in error_of(
            ".data 0x40010000\n    addi r3, r0, 1"
        )

    def test_second_data_section_keeps_cursor(self):
        # A later bare .data resumes at the running cursor; only the
        # first one needs an address.
        program = assemble(
            ".data 0x40010000\na: .word 1\n.text\n    halt\n.data\nb: .word 2"
        )
        assert program.symbols["b"] == 0x40010004


class TestSourceLineMap:
    def test_program_lines_map_back_to_source(self):
        program = assemble(
            "# comment\n\nstart:\n    addi r3, r0, 1\n    halt"
        )
        assert program.lines == [4, 5]
