"""Block vs reference ISA interpreter: observable equivalence sweep.

The predecoded basic-block interpreter (``isa_mode="block"``) coalesces
core-private instruction runs into single engine events; these tests
pin it bit-for-bit to the per-instruction reference across every asmlib
kernel and every accounting/configuration axis: tracing, pc counting,
cold vs pre-warmed I-cache, and seeded fault plans whose mid-kernel
bit-flips must invalidate and replay in-flight blocks.
"""

import pytest

from repro.faults.plan import FaultEvent, FaultPlan
from repro.hw.asmlib import ROUTINES
from repro.hw.isa import ISAError, ISAExecutor, Program, Instruction
from repro.hw.soc import SoC, SoCConfig
from repro.perf.isabench import observable, run_kernel

KERNELS = sorted(ROUTINES)

#: Small call counts: the sweep runs every kernel ~10 ways.
ITERS = {"memcpy_words": 3, "array_sum": 3, "popcount32": 12,
         "crc32_word": 4, "isqrt32": 4}


def _fault_plan():
    # One memory flip into the shared input array plus one register
    # upset, timed to land mid-run for every kernel in the sweep.
    return FaultPlan(
        seed=11,
        events=[
            FaultEvent(kind="bitflip_memory", time=500,
                       addr=0x4008_0008, arg=7),
            FaultEvent(kind="bitflip_register", time=800, cpu=0),
        ],
    )


VARIANTS = {
    "base": {},
    "trace": {"trace": True},
    "count_pcs": {"count_pcs": True},
    "warm_icache": {"warm_icache": True},
    "faulted": {"trace": True, "plan": _fault_plan},
}


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize("variant", sorted(VARIANTS))
def test_block_matches_reference(kernel, variant):
    kwargs = dict(VARIANTS[variant])
    if "plan" in kwargs:
        kwargs["plan"] = kwargs["plan"]()
    ref = run_kernel(kernel, "reference", iterations=ITERS[kernel], **kwargs)
    blk = run_kernel(kernel, "block", iterations=ITERS[kernel], **kwargs)
    assert observable(ref) == observable(blk)
    assert ref["halted"] and blk["halted"]


@pytest.mark.parametrize("kernel", KERNELS)
def test_pc_counts_identical(kernel):
    """Per-pc execution counts agree and total to the retired count."""
    ref = run_kernel(kernel, "reference", iterations=ITERS[kernel],
                     count_pcs=True)
    blk = run_kernel(kernel, "block", iterations=ITERS[kernel],
                     count_pcs=True)
    assert ref["pc_counts"] == blk["pc_counts"]
    assert sum(ref["pc_counts"].values()) == ref["retired"]
    assert sum(blk["pc_counts"].values()) == blk["retired"]


def test_faulted_compute_kernel_replays_blocks():
    """A fault inside a long coalesced window forces a rollback+replay,
    and the replayed run still matches the reference exactly."""
    plan = FaultPlan(events=[
        FaultEvent(kind="bitflip_register", time=700, cpu=0),
    ])
    ref = run_kernel("crc32_word", "reference", iterations=4, trace=True,
                     plan=plan)
    blk = run_kernel("crc32_word", "block", iterations=4, trace=True,
                     plan=plan)
    assert observable(ref) == observable(blk)
    assert blk["replays"] > 0


def test_block_mode_run_twice_deterministic():
    first = run_kernel("isqrt32", "block", iterations=3)
    second = run_kernel("isqrt32", "block", iterations=3)
    assert observable(first) == observable(second)


# ----------------------------------------------------------- local BRAM faults
LOCAL_PROGRAM = """
    addi r5, r0, 0x100       # local BRAM scratch address
    addi r6, r0, 200
    addi r7, r0, 0
loop:
    swi  r6, r5, 0
    lwi  r8, r5, 0
    add  r7, r7, r8
    addi r5, r5, 4
    subi r6, r6, 1
    bnez r6, loop
    halt
"""


def _run_local(mode, flip_at=None):
    from repro.hw.assembler import assemble

    soc = SoC(SoCConfig(n_cpus=1, isa_mode=mode))
    program = assemble(LOCAL_PROGRAM)
    core = soc.cores[0]
    if flip_at is not None:
        # Flip a bit of a local word the loop reads back later.
        soc.sim.schedule_at(flip_at,
                            lambda: core.local_mem.flip_bit(0x140, 2))
    executor = ISAExecutor(core, program)
    soc.sim.process(executor.run())
    soc.sim.run()
    return (executor.cycles, soc.sim.now, tuple(executor.state.regs),
            executor.state.pc, executor.data_accesses,
            core.icache.hits, core.icache.misses)


@pytest.mark.parametrize("flip_at", [None, 400, 900])
def test_local_bram_flip_identical(flip_at):
    assert _run_local("reference", flip_at) == _run_local("block", flip_at)


def test_injector_routes_local_bitflips():
    """bitflip_memory with a cpu and a local address hits that core's
    BRAM, not DDR."""
    from types import SimpleNamespace

    from repro.faults.injector import FaultInjector
    from repro.trace.recorder import TraceRecorder

    soc = SoC(SoCConfig(n_cpus=2))
    plan = FaultPlan(events=[
        FaultEvent(kind="bitflip_memory", time=10, cpu=1, addr=0x40, arg=0),
    ])
    kernel_stub = SimpleNamespace(sim=soc.sim, soc=soc, trace=TraceRecorder())
    FaultInjector(kernel_stub, plan).arm()
    soc.sim.run(until=100)
    assert soc.cores[1].local_mem.bitflips == 1
    assert soc.ddr.bitflips == 0
    assert soc.cores[1].local_mem.read_word(0x40) == 1


# ------------------------------------------------------------- error parity
def _run_error(mode, source, max_instructions=1_000_000, data=None):
    from repro.hw.assembler import assemble

    soc = SoC(SoCConfig(n_cpus=1, isa_mode=mode))
    program = assemble(source)
    if data:
        program.data.update(data)
    executor = ISAExecutor(soc.cores[0], program)
    caught = []

    def driver():
        try:
            yield from executor.run(max_instructions)
        except ISAError as exc:
            caught.append(str(exc))

    soc.sim.process(driver())
    soc.sim.run()
    return (caught, executor.cycles, soc.sim.now,
            executor.state.instructions_retired, executor.state.pc)


@pytest.mark.parametrize("source,budget", [
    ("loop:\n    br loop\n", 50),                       # budget exhausted
    ("    addi r3, r0, 99\n    jr r3\n", 1_000),         # jr past the end
    ("    lwi r3, r0, 0x30000000\n    halt\n", 1_000),   # unmapped address
])
def test_errors_identical_across_modes(source, budget):
    ref = _run_error("reference", source, budget)
    blk = _run_error("block", source, budget)
    assert ref == blk
    assert ref[0], "expected an ISAError"


def test_unknown_opcode_rejected_at_predecode():
    soc = SoC(SoCConfig(n_cpus=1))
    program = Program(instructions=[Instruction(op="frobnicate")])
    with pytest.raises(ISAError, match=r"unknown opcode 'frobnicate' at pc=0"):
        ISAExecutor(soc.cores[0], program)


def test_bad_register_rejected_at_predecode():
    soc = SoC(SoCConfig(n_cpus=1))
    program = Program(instructions=[Instruction(op="add", rd=35)])
    with pytest.raises(ISAError, match=r"register r35 out of range at pc=0"):
        ISAExecutor(soc.cores[0], program)


def test_invalid_mode_rejected():
    soc = SoC(SoCConfig(n_cpus=1))
    program = Program(instructions=[Instruction(op="halt")])
    with pytest.raises(ValueError, match="isa_mode"):
        ISAExecutor(soc.cores[0], program, mode="turbo")
    with pytest.raises(ValueError, match="isa_mode"):
        SoCConfig(n_cpus=1, isa_mode="turbo")


def test_block_mode_reports_window_counters():
    blk = run_kernel("popcount32", "block", iterations=5)
    assert blk["windows"] > 0
    assert blk["window_instructions"] == blk["retired"]
    ref = run_kernel("popcount32", "reference", iterations=5)
    assert ref["windows"] == 0
    # The whole point: far fewer engine events for the same work.
    assert blk["events"] < ref["events"] / 5
