"""Tests for subroutines (brl/jr) and the assembly routine library."""

import binascii

import pytest

from repro.hw.asmlib import ROUTINES, link
from repro.hw.isa import ISAExecutor
from repro.hw.soc import SoC, SoCConfig


def run(program, max_instructions=5_000_000):
    soc = SoC(SoCConfig(n_cpus=1))
    executor = ISAExecutor(soc.core(0), program)
    soc.sim.process(executor.run(max_instructions))
    soc.sim.run()
    return soc, executor


class TestSubroutines:
    def test_brl_links_return_address(self):
        program = link("""
            addi r3, r0, 5
            brl  r15, double_it
            swi  r3, r0, 0x40010000
            halt
        double_it:
            add  r3, r3, r3
            jr   r15
        """, routines=())
        soc, _ = run(program)
        assert soc.ddr.read_word(0x40010000) == 10

    def test_multiple_calls_same_routine(self):
        program = link("""
            addi r5, r0, 3
            brl  r15, popcount32
            addi r6, r3, 0
            addi r5, r0, 0xFF
            brl  r15, popcount32
            add  r3, r3, r6
            swi  r3, r0, 0x40010000
            halt
        """, routines=["popcount32"])
        soc, _ = run(program)
        assert soc.ddr.read_word(0x40010000) == 2 + 8

    def test_unknown_routine_rejected(self):
        with pytest.raises(KeyError):
            link("halt", routines=["frobnicate"])

    def test_duplicate_routine_included_once(self):
        program = link("halt", routines=["array_sum", "array_sum"])
        labels = [i.label for i in program.instructions if i.label]
        assert labels.count("array_sum_loop") <= 2  # branch refs, one body


class TestRoutines:
    def test_memcpy_words(self):
        program = link("""
        .data 0x40010000
        src: .word 11 22 33 44 55
        .data 0x40020000
        dst: .space 5
        .text 0x40000000
            addi r5, r0, src
            addi r6, r0, dst
            addi r7, r0, 5
            brl  r15, memcpy_words
            halt
        """, routines=["memcpy_words"])
        soc, _ = run(program)
        assert [soc.ddr.read_word(0x40020000 + 4 * i) for i in range(5)] == [11, 22, 33, 44, 55]

    def test_array_sum(self):
        program = link("""
        .data 0x40010000
        arr: .word 10 20 30 40
        .text 0x40000000
            addi r5, r0, arr
            addi r6, r0, 4
            brl  r15, array_sum
            swi  r3, r0, 0x40020000
            halt
        """, routines=["array_sum"])
        soc, _ = run(program)
        assert soc.ddr.read_word(0x40020000) == 100

    def test_array_sum_empty(self):
        program = link("""
            addi r5, r0, 0x40010000
            addi r6, r0, 0
            brl  r15, array_sum
            swi  r3, r0, 0x40020000
            halt
        """, routines=["array_sum"])
        soc, _ = run(program)
        assert soc.ddr.read_word(0x40020000) == 0

    @pytest.mark.parametrize("value", [0, 1, 0xFFFFFFFF, 0x12345678])
    def test_popcount32(self, value):
        program = link(f"""
            addi r5, r0, {value}
            brl  r15, popcount32
            swi  r3, r0, 0x40020000
            halt
        """, routines=["popcount32"])
        soc, _ = run(program)
        assert soc.ddr.read_word(0x40020000) == bin(value).count("1")

    @pytest.mark.parametrize("value", [0, 2, 100, 65_535, 1_000_000])
    def test_isqrt32(self, value):
        program = link(f"""
            addi r5, r0, {value}
            brl  r15, isqrt32
            swi  r3, r0, 0x40020000
            halt
        """, routines=["isqrt32"])
        soc, _ = run(program)
        root = soc.ddr.read_word(0x40020000)
        assert root * root <= value < (root + 1) * (root + 1)

    def test_crc32_word_step_matches_binascii(self):
        """One CRC-32 word step cross-checked against the reference
        bit-reflected implementation."""
        value = 0x12345678

        def reference_step(word, crc):
            crc ^= word
            for _ in range(32):
                crc = (crc >> 1) ^ (0xEDB88320 if crc & 1 else 0)
            return crc

        program = link(f"""
            addi r5, r0, {value}
            addi r6, r0, 0xFFFFFFFF
            brl  r15, crc32_word
            swi  r3, r0, 0x40020000
            halt
        """, routines=["crc32_word"])
        soc, _ = run(program)
        assert soc.ddr.read_word(0x40020000) == reference_step(value, 0xFFFFFFFF)
