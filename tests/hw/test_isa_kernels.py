"""Cross-validation: MiBench kernels in assembly vs the Python models.

The bitcount SWAR counter and the integer-sqrt Newton iteration are
small enough to write in the MicroBlaze-subset ISA; running them on
the instruction-accurate substrate and comparing against the Python
implementations ties the two layers of the reproduction together.
"""

import pytest

from repro.hw.assembler import assemble
from repro.hw.isa import ISAExecutor
from repro.hw.soc import SoC, SoCConfig
from repro.workloads.basicmath import integer_sqrt
from repro.workloads.bitcount import count_parallel

# SWAR population count (bitcount counter 5) of the word at 'input'.
POPCOUNT = """
.data 0x40010000
input:  .word 0
output: .word 0
.text 0x40000000
    lwi  r3, r0, input
    # v = v - ((v >> 1) & 0x55555555)
    srli r4, r3, 1
    andi r4, r4, 0x55555555
    sub  r3, r3, r4
    # v = (v & 0x33333333) + ((v >> 2) & 0x33333333)
    andi r5, r3, 0x33333333
    srli r6, r3, 2
    andi r6, r6, 0x33333333
    add  r3, r5, r6
    # v = (v + (v >> 4)) & 0x0F0F0F0F
    srli r7, r3, 4
    add  r3, r3, r7
    andi r3, r3, 0x0F0F0F0F
    # (v * 0x01010101) >> 24
    muli r3, r3, 0x01010101
    srli r3, r3, 24
    swi  r3, r0, output
    halt
"""

# Newton integer sqrt of the word at 'input'.
ISQRT = """
.data 0x40010000
input:  .word 0
output: .word 0
.text 0x40000000
    lwi  r3, r0, input      # value
    addi r4, r3, 0          # x = value
    addi r5, r3, 1
    srli r5, r5, 1          # y = (x + 1) / 2
loop:
    cmp  r6, r5, r4         # r6 = x - y ; loop while y < x -> x - y > 0
    blez r6, done
    addi r4, r5, 0          # x = y
    # y = (x + value/x) / 2 -- integer divide by repeated subtraction
    addi r7, r3, 0          # dividend = value
    addi r8, r0, 0          # quotient
div:
    cmp  r9, r4, r7         # r7 - r4
    bltz r9, divdone        # dividend < x
    sub  r7, r7, r4
    addi r8, r8, 1
    br   div
divdone:
    add  r5, r4, r8
    srli r5, r5, 1
    br   loop
done:
    swi  r4, r0, output
    halt
"""


def run_with_input(source, value, max_instructions=2_000_000):
    soc = SoC(SoCConfig(n_cpus=1))
    program = assemble(source)
    program.data[0x40010000] = value & 0xFFFFFFFF
    executor = ISAExecutor(soc.core(0), program)
    soc.sim.process(executor.run(max_instructions))
    soc.sim.run()
    return soc.ddr.read_word(0x40010004), executor


@pytest.mark.parametrize(
    "value",
    [0, 1, 0xFFFFFFFF, 0x80000000, 0x12345678, 0xDEADBEEF, 0x55555555, 7],
)
def test_asm_popcount_matches_python(value):
    asm_result, _ = run_with_input(POPCOUNT, value)
    python_result, _units = count_parallel(value)
    assert asm_result == python_result == bin(value).count("1")


@pytest.mark.parametrize("value", [0, 1, 2, 3, 4, 100, 10_000, 65_535, 123_456])
def test_asm_isqrt_matches_python(value):
    asm_result, _ = run_with_input(ISQRT, value)
    python_result, _iters = integer_sqrt(value)
    assert asm_result == python_result


def test_popcount_cycle_cost_is_small():
    """The SWAR counter is branch-free: tens of cycles, not hundreds."""
    _, executor = run_with_input(POPCOUNT, 0xABCDEF01)
    assert executor.state.instructions_retired < 20
    assert executor.cycles < 150  # includes cold I-cache misses
