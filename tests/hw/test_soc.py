"""Tests for SoC assembly (Figure 1 wiring)."""

import pytest

from repro.hw.soc import SoC, SoCConfig


def test_default_config_matches_paper():
    config = SoCConfig()
    assert config.clock_hz == 50_000_000
    assert config.tick_cycles == 5_000_000          # 0.1 s at 50 MHz
    assert config.tick_cycles / config.clock_hz == pytest.approx(0.1)


def test_builds_requested_core_count():
    for n in (1, 2, 4):
        soc = SoC(SoCConfig(n_cpus=n))
        assert len(soc.cores) == n
        assert soc.intc.n_cpus == n
        assert soc.crossbar.n_ports == n


def test_cores_have_private_memories_and_caches():
    soc = SoC(SoCConfig(n_cpus=2))
    assert soc.core(0).local_mem is not soc.core(1).local_mem
    assert soc.core(0).icache is not soc.core(1).icache
    assert soc.core(0).bus is soc.core(1).bus  # single shared OPB


def test_interrupt_lines_wired():
    soc = SoC(SoCConfig(n_cpus=2))
    source = soc.intc.add_source("dev")
    soc.intc.raise_interrupt(source)
    assert soc.core(0).line_asserted
    assert not soc.core(1).line_asserted


def test_enable_listener_mirrors_to_mpic():
    soc = SoC(SoCConfig(n_cpus=2))
    soc.core(0).disable_interrupts()
    source = soc.intc.add_source("dev")
    soc.intc.raise_interrupt(source)
    # cpu0 disabled -> offer goes to cpu1.
    assert not soc.core(0).line_asserted
    assert soc.core(1).line_asserted


def test_add_can_interface():
    soc = SoC(SoCConfig(n_cpus=2))
    can = soc.add_can_interface("can0", task_name="evt")
    assert soc.peripherals["can0"] is can
    with pytest.raises(ValueError):
        soc.add_can_interface("can0")


def test_can_frames_raise_interrupts():
    soc = SoC(SoCConfig(n_cpus=1))
    can = soc.add_can_interface("can0", task_name="evt")
    can.program_frames([100, 200])
    soc.sim.run(until=150)
    assert can.events_raised == 1
    _, payload = soc.intc.acknowledge(0)
    assert payload["task"] == "evt"
    assert payload["kind"] == "aperiodic"


def test_poisson_frames_deterministic():
    soc_a = SoC(SoCConfig(n_cpus=1))
    soc_b = SoC(SoCConfig(n_cpus=1))
    times_a = soc_a.add_can_interface("can0").program_poisson(1 / 5_000, 100_000, seed=9)
    times_b = soc_b.add_can_interface("can0").program_poisson(1 / 5_000, 100_000, seed=9)
    assert times_a == times_b
    assert all(0 <= t < 100_000 for t in times_a)


def test_utilization_report_shape():
    soc = SoC(SoCConfig(n_cpus=2))
    rows = soc.utilization_report()
    assert len(rows) == 3  # 2 cores + bus
    assert rows[-1]["cpu"] == "bus"


def test_seconds_helper():
    soc = SoC(SoCConfig())
    assert soc.seconds(50_000_000) == pytest.approx(1.0)


def test_timer_period_follows_config():
    soc = SoC(SoCConfig(n_cpus=1, tick_cycles=123_000))
    assert soc.timer.period == 123_000


def test_invalid_configs():
    with pytest.raises(ValueError):
        SoCConfig(n_cpus=0)
    with pytest.raises(ValueError):
        SoCConfig(tick_cycles=0)
