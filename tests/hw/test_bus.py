"""Tests for OPB bus arbitration and accounting."""

import pytest

from repro.hw.bus import OPBBus, RegisterTarget
from repro.hw.memory import DDRMemory
from repro.sim import Interrupt, Simulator


def setup():
    sim = Simulator()
    bus = OPBBus(sim)
    ddr = DDRMemory()
    return sim, bus, ddr


def test_single_transfer_takes_target_latency():
    sim, bus, ddr = setup()
    done = []

    def master():
        spent = yield from bus.transfer(0, ddr, words=1)
        done.append((sim.now, spent))

    sim.process(master())
    sim.run()
    assert done == [(12, 12)]


def test_transfers_serialise():
    sim, bus, ddr = setup()
    times = []

    def master(mid):
        yield from bus.transfer(mid, ddr, words=1)
        times.append((mid, sim.now))

    sim.process(master(0))
    sim.process(master(1))
    sim.run()
    assert times == [(0, 12), (1, 24)]


def test_fixed_priority_lower_master_wins():
    sim, bus, ddr = setup()
    order = []

    def hold_then_spawn():
        # Occupy the bus, then let two masters contend.
        req_gen = bus.transfer(9, ddr, words=1)
        yield from req_gen
        order.append("held")

    def master(mid):
        yield sim.timeout(1)  # both request while bus is held
        yield from bus.transfer(mid, ddr, words=1)
        order.append(mid)

    sim.process(hold_then_spawn())
    sim.process(master(3))
    sim.process(master(1))
    sim.run()
    assert order == ["held", 1, 3]


def test_stats_accounting():
    sim, bus, ddr = setup()

    def master(mid):
        yield from bus.transfer(mid, ddr, words=2)

    sim.process(master(0))
    sim.process(master(1))
    sim.run()
    assert bus.stats.transactions == 2
    assert bus.stats.busy_cycles == 2 * 14
    assert bus.stats.utilization(sim.now) == 1.0
    assert bus.stats.wait_cycles[1] == 14
    assert bus.stats.mean_wait(1) == 14
    assert bus.stats.mean_wait(5) == 0.0
    assert bus.stats.per_target["ddr"] == 28


def test_interrupted_holder_releases_bus():
    """The regression behind the first kernel deadlock."""
    sim, bus, ddr = setup()
    completions = []

    def victim():
        try:
            yield from bus.transfer(0, ddr, words=8)
        except Interrupt:
            pass
        # do not touch the bus again

    def bystander():
        yield sim.timeout(2)
        yield from bus.transfer(1, ddr, words=1)
        completions.append(sim.now)

    proc = sim.process(victim())
    sim.process(bystander())
    sim.schedule(5, lambda: proc.interrupt("irq"))
    sim.run()
    assert completions and completions[0] < 30
    assert not bus.busy


def test_read_write_word_helpers():
    sim, bus, ddr = setup()
    got = []

    def master():
        yield from bus.write_word(0, ddr, 0x4000_0000, 77)
        value = yield from bus.read_word(0, ddr, 0x4000_0000)
        got.append(value)

    sim.process(master())
    sim.run()
    assert got == [77]


def test_register_target_latency():
    reg = RegisterTarget(name="dev", latency=3)
    assert reg.access_latency(1) == 3
    assert reg.access_latency(2) == 6
