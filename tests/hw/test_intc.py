"""Tests for the multiprocessor interrupt controller (MPIC)."""

import pytest

from repro.hw.intc import InterruptMode, MultiprocessorInterruptController
from repro.sim import Simulator


class Lines:
    """Capture line assertions per cpu."""

    def __init__(self, intc, n):
        self.state = [False] * n
        self.history = []
        for cpu in range(n):
            intc.connect_cpu(cpu, self._make(cpu))

    def _make(self, cpu):
        def cb(asserted):
            self.state[cpu] = asserted
            self.history.append((cpu, asserted))
        return cb


def setup(n_cpus=2, timeout=100):
    sim = Simulator()
    intc = MultiprocessorInterruptController(sim, n_cpus, ack_timeout=timeout)
    lines = Lines(intc, n_cpus)
    return sim, intc, lines


def test_distribute_goes_to_first_free_cpu():
    sim, intc, lines = setup()
    src = intc.add_source("dev")
    intc.raise_interrupt(src, payload="hello")
    assert lines.state == [True, False]
    source, payload = intc.acknowledge(0)
    assert source is src
    assert payload == "hello"
    assert lines.state == [False, False]


def test_distribution_skips_busy_cpu():
    sim, intc, lines = setup()
    src = intc.add_source("dev")
    intc.raise_interrupt(src)
    intc.acknowledge(0)  # cpu0 now servicing
    intc.raise_interrupt(src)
    assert lines.state == [False, True]


def test_parallel_handlers_tracked():
    sim, intc, lines = setup()
    src = intc.add_source("dev")
    intc.raise_interrupt(src)
    intc.acknowledge(0)
    intc.raise_interrupt(src)
    intc.acknowledge(1)
    assert intc.max_parallel_handlers == 2
    intc.complete(0)
    intc.complete(1)


def test_timeout_reroutes_to_next_cpu():
    sim, intc, lines = setup(timeout=50)
    src = intc.add_source("dev")
    intc.raise_interrupt(src)
    assert lines.state == [True, False]
    sim.run(until=60)  # cpu0 never acks
    assert lines.state == [False, True]
    assert intc.timeouts == 1
    source, _ = intc.acknowledge(1)
    assert source is src


def test_ack_after_timeout_window_still_works_if_claimed_before():
    sim, intc, lines = setup(timeout=50)
    src = intc.add_source("dev")
    intc.raise_interrupt(src)
    intc.acknowledge(0)
    sim.run(until=100)  # timeout must not re-route a claimed interrupt
    assert intc.timeouts == 0


def test_parked_when_all_busy_then_retried():
    sim, intc, lines = setup()
    src = intc.add_source("dev")
    intc.raise_interrupt(src)
    intc.acknowledge(0)
    intc.raise_interrupt(src)
    intc.acknowledge(1)
    intc.raise_interrupt(src)  # nobody free -> parked
    assert lines.state == [False, False]
    intc.complete(0)
    assert lines.state == [True, False]


def test_booking_restricts_delivery():
    sim, intc, lines = setup()
    src = intc.add_source("dev", mode=InterruptMode.BOOKED, booked_cpu=1)
    intc.raise_interrupt(src)
    assert lines.state == [False, True]


def test_book_and_unbook():
    sim, intc, lines = setup()
    src = intc.add_source("dev")
    intc.book(src, 1)
    intc.raise_interrupt(src)
    assert lines.state == [False, True]
    intc.acknowledge(1)
    intc.complete(1)
    intc.unbook(src)
    intc.raise_interrupt(src)
    assert lines.state == [True, False]


def test_broadcast_reaches_all():
    sim, intc, lines = setup()
    src = intc.add_source("timer", mode=InterruptMode.BROADCAST)
    intc.raise_interrupt(src)
    assert lines.state == [True, True]


def test_multicast_reaches_selected():
    sim, intc, lines = setup(n_cpus=3)
    src = intc.add_source("dev", mode=InterruptMode.MULTICAST, multicast_cpus={0, 2})
    intc.raise_interrupt(src)
    assert lines.state == [True, False, True]


def test_multicast_requires_targets():
    sim, intc, _ = setup()
    with pytest.raises(ValueError):
        intc.add_source("dev", mode=InterruptMode.MULTICAST)


def test_booked_requires_cpu():
    sim, intc, _ = setup()
    with pytest.raises(ValueError):
        intc.add_source("dev", mode=InterruptMode.BOOKED)


def test_ipi_targets_specific_cpu():
    sim, intc, lines = setup()
    intc.send_ipi(0, 1, payload={"kind": "ipi"})
    assert lines.state == [False, True]
    source, payload = intc.acknowledge(1)
    assert payload == {"kind": "ipi"}
    assert intc.ipis_sent == 1


def test_ipi_out_of_range():
    sim, intc, _ = setup()
    with pytest.raises(ValueError):
        intc.send_ipi(0, 9)


def test_disabled_cpu_not_offered():
    sim, intc, lines = setup()
    intc.set_enabled(0, False)
    src = intc.add_source("dev")
    intc.raise_interrupt(src)
    assert lines.state == [False, True]


def test_reenabling_delivers_parked():
    sim, intc, lines = setup(n_cpus=1)
    intc.set_enabled(0, False)
    src = intc.add_source("dev")
    intc.raise_interrupt(src)
    assert lines.state == [False]
    intc.set_enabled(0, True)
    assert lines.state == [True]


def test_spurious_ack_raises():
    sim, intc, _ = setup()
    with pytest.raises(RuntimeError):
        intc.acknowledge(0)


def test_eoi_without_service_raises():
    sim, intc, _ = setup()
    with pytest.raises(RuntimeError):
        intc.complete(0)


def test_delivery_counts():
    sim, intc, _ = setup()
    src = intc.add_source("dev")
    intc.raise_interrupt(src)
    intc.acknowledge(0)
    intc.complete(0)
    assert intc.delivered == 1
