"""Tests for the windowed bus monitor."""

import pytest

from repro.hw.bus import OPBBus
from repro.hw.memory import DDRMemory
from repro.hw.monitor import BusMonitor, BusSample
from repro.sim import Simulator


def busy_system(duration=10_000, masters=2):
    sim = Simulator()
    bus = OPBBus(sim)
    ddr = DDRMemory()

    def master(mid):
        while sim.now < duration:
            yield from bus.transfer(mid, ddr, words=4)
            yield sim.timeout(10)

    for mid in range(masters):
        sim.process(master(mid))
    return sim, bus


def test_samples_cover_run():
    sim, bus = busy_system(duration=10_000)
    monitor = BusMonitor(sim, bus, window=1_000)
    monitor.start()
    sim.run(until=10_000)
    assert len(monitor.samples) == 10
    assert monitor.samples[0].start == 0
    assert monitor.samples[-1].end == 10_000


def test_utilization_within_bounds():
    sim, bus = busy_system()
    monitor = BusMonitor(sim, bus, window=1_000)
    monitor.start()
    sim.run(until=10_000)
    for sample in monitor.samples:
        assert 0.0 <= sample.utilization <= 1.0
    assert monitor.peak_utilization() > 0.5


def test_windows_sum_to_cumulative():
    sim, bus = busy_system()
    monitor = BusMonitor(sim, bus, window=1_000)
    monitor.start()
    sim.run(until=10_000)
    assert sum(s.busy_cycles for s in monitor.samples) == bus.stats.busy_cycles
    assert sum(s.transactions for s in monitor.samples) == bus.stats.transactions


def test_idle_bus_reads_zero():
    sim = Simulator()
    bus = OPBBus(sim)
    monitor = BusMonitor(sim, bus, window=500)
    monitor.start()
    sim.run(until=2_000)
    assert monitor.utilization_series() == [0.0] * 4
    assert monitor.steady_state_utilization() == 0.0


def test_stop_halts_sampling():
    sim, bus = busy_system()
    monitor = BusMonitor(sim, bus, window=1_000)
    monitor.start()
    sim.run(until=3_000)
    monitor.stop()
    sim.run(until=10_000)
    assert len(monitor.samples) == 3


def test_sparkline_renders():
    sim, bus = busy_system()
    monitor = BusMonitor(sim, bus, window=1_000)
    monitor.start()
    sim.run(until=10_000)
    art = monitor.sparkline(width=20)
    assert len(art) <= 20
    assert art.strip()  # busy bus -> non-blank glyphs
    assert BusMonitor(Simulator(), bus, window=10).sparkline() == "(no samples)"


def test_validation():
    sim = Simulator()
    bus = OPBBus(sim)
    with pytest.raises(ValueError):
        BusMonitor(sim, bus, window=0)
    monitor = BusMonitor(sim, bus, window=10)
    monitor.start()
    with pytest.raises(RuntimeError):
        monitor.start()


def test_utilization_series_matches_samples():
    sim, bus = busy_system()
    monitor = BusMonitor(sim, bus, window=1_000)
    monitor.start()
    sim.run(until=10_000)
    series = monitor.utilization_series()
    assert series == [s.utilization for s in monitor.samples]
    assert monitor.peak_utilization() == max(series)


def test_steady_state_skips_warmup_windows():
    sim, bus = busy_system()
    monitor = BusMonitor(sim, bus, window=1_000)
    monitor.start()
    sim.run(until=10_000)
    series = monitor.utilization_series()
    assert monitor.steady_state_utilization() == pytest.approx(
        sum(series[1:]) / len(series[1:])
    )
    assert monitor.steady_state_utilization(skip=3) == pytest.approx(
        sum(series[3:]) / len(series[3:])
    )
    # skipping every sample degenerates to 0.0, not a ZeroDivisionError
    assert monitor.steady_state_utilization(skip=len(series)) == 0.0


def test_peak_on_empty_monitor_is_zero():
    sim = Simulator()
    bus = OPBBus(sim)
    monitor = BusMonitor(sim, bus, window=100)
    assert monitor.peak_utilization() == 0.0
    assert monitor.utilization_series() == []


def test_fold_into_registry():
    from repro.obs.metrics import MetricsRegistry

    sim, bus = busy_system()
    monitor = BusMonitor(sim, bus, window=1_000)
    monitor.start()
    sim.run(until=10_000)
    registry = MetricsRegistry()
    monitor.fold_into(registry)
    snap = registry.snapshot()
    assert snap["bus_window_utilization"]["series"][0]["count"] == len(monitor.samples)
    assert snap["bus_peak_utilization"]["series"][0]["value"] == pytest.approx(
        monitor.peak_utilization(), abs=1e-6)
    assert snap["bus_steady_state_utilization"]["series"][0]["value"] == pytest.approx(
        monitor.steady_state_utilization(), abs=1e-6)


def test_fold_into_custom_prefix():
    from repro.obs.metrics import MetricsRegistry

    sim = Simulator()
    bus = OPBBus(sim)
    monitor = BusMonitor(sim, bus, window=100)
    registry = MetricsRegistry()
    monitor.fold_into(registry, prefix="opb")
    assert "opb_peak_utilization" in registry
    assert "bus_peak_utilization" not in registry


def test_mean_wait_per_sample():
    sample = BusSample(start=0, end=100, busy_cycles=50, transactions=5, wait_cycles=20)
    assert sample.mean_wait == 4.0
    empty = BusSample(start=0, end=100, busy_cycles=0, transactions=0, wait_cycles=0)
    assert empty.mean_wait == 0.0
