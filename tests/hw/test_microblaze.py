"""Tests for the MicroBlaze core model (profile-driven execution)."""

import pytest

from repro.hw.bus import OPBBus
from repro.hw.memory import DDRMemory
from repro.hw.microblaze import ExecutionProfile, MicroBlaze, SegmentResult
from repro.sim import Interrupt, Simulator


def make_core(sim=None, cpu=0, chunk=1000):
    sim = sim or Simulator()
    bus = OPBBus(sim)
    ddr = DDRMemory()
    return sim, MicroBlaze(sim, cpu, bus, ddr, chunk_cycles=chunk)


def test_profile_validation():
    with pytest.raises(ValueError):
        ExecutionProfile(access_period=0)
    with pytest.raises(ValueError):
        ExecutionProfile(access_words=0)


def test_nominal_bus_share():
    ddr = DDRMemory()
    profile = ExecutionProfile(access_period=100, access_words=4)
    assert profile.nominal_bus_share(ddr) == pytest.approx(0.18)


def test_uncontended_execution_takes_nominal_time():
    sim, core = make_core()
    result = SegmentResult()

    def run():
        yield from core.execute(10_000, ExecutionProfile(100, 4), result)

    sim.process(run())
    sim.run()
    assert result.completed
    assert result.nominal_done == 10_000
    # Uncontended: real == nominal (bus latency is inside the budget).
    assert result.real_cycles == 10_000
    assert result.wait_cycles == 0
    assert sim.now == 10_000


def test_contended_execution_stretches():
    sim = Simulator()
    bus = OPBBus(sim)
    ddr = DDRMemory()
    a = MicroBlaze(sim, 0, bus, ddr, chunk_cycles=500)
    b = MicroBlaze(sim, 1, bus, ddr, chunk_cycles=500)
    results = [SegmentResult(), SegmentResult()]

    def run(core, result):
        yield from core.execute(20_000, ExecutionProfile(40, 4), result)

    sim.process(run(a, results[0]))
    sim.process(run(b, results[1]))
    sim.run()
    assert all(r.completed for r in results)
    # Both saturate the bus (18/40 each): real time must exceed nominal.
    assert results[0].real_cycles > 20_000 or results[1].real_cycles > 20_000
    assert sim.now > 20_000


def test_interrupt_mid_execution_credits_partial_progress():
    sim, core = make_core(chunk=1000)
    result = SegmentResult()
    state = {}

    def run():
        try:
            yield from core.execute(100_000, ExecutionProfile(100, 4), result)
        except Interrupt:
            state["interrupted_at"] = sim.now

    proc = sim.process(run())
    sim.schedule(12_345, lambda: proc.interrupt("irq"))
    sim.run()
    assert state["interrupted_at"] == 12_345
    # Progress within ~1 chunk of the interrupt instant.
    assert 11_345 <= result.nominal_done <= 12_345
    assert not result.completed


def test_zero_cycles_completes_immediately():
    sim, core = make_core()
    result = SegmentResult()

    def run():
        yield from core.execute(0, result=result)

    sim.process(run())
    sim.run()
    assert result.completed
    assert result.nominal_done == 0


def test_negative_cycles_rejected():
    sim, core = make_core()
    with pytest.raises(ValueError):
        list(core.execute(-1))


def test_idle_accounting():
    sim, core = make_core()

    def run():
        yield from core.idle(500)

    sim.process(run())
    sim.run()
    assert core.idle_cycles == 500
    assert core.busy_cycles == 0


def test_irq_event_fires_immediately_if_asserted():
    sim, core = make_core()
    core.on_interrupt_line(True)
    event = core.irq_event()
    assert event.triggered


def test_irq_event_waits_for_assertion():
    sim, core = make_core()
    event = core.irq_event()
    assert not event.triggered
    core.on_interrupt_line(True)
    assert event.triggered


def test_irq_event_respects_disable():
    sim, core = make_core()
    core.disable_interrupts()
    core.on_interrupt_line(True)
    event = core.irq_event()
    assert not event.triggered
    core.enable_interrupts()
    assert event.triggered


def test_enable_listener_called():
    sim, core = make_core()
    calls = []
    core.add_enable_listener(calls.append)
    core.disable_interrupts()
    core.enable_interrupts()
    assert calls == [False, True]


def test_utilization_stats():
    sim, core = make_core()

    def run():
        yield from core.execute(1000, ExecutionProfile(100, 4))
        yield from core.idle(200)

    sim.process(run())
    sim.run()
    stats = core.utilization_stats
    assert stats["busy"] == 1000
    assert stats["idle"] == 200
    assert stats["nominal"] == 1000
