"""Tests for the direct-mapped instruction cache."""

import pytest

from repro.hw.cache import DirectMappedICache


def test_cold_miss_then_hit():
    cache = DirectMappedICache(0, n_lines=4, line_words=4)
    assert not cache.lookup(0x100)
    cache.fill_line(0x100)
    assert cache.lookup(0x100)
    assert cache.hits == 1
    assert cache.misses == 1


def test_same_line_hits():
    cache = DirectMappedICache(0, n_lines=4, line_words=4)
    cache.fill_line(0x100)
    # 4 words * 4 bytes = 16-byte line; all in-line addresses hit.
    assert cache.lookup(0x104)
    assert cache.lookup(0x10C)


def test_conflict_eviction():
    cache = DirectMappedICache(0, n_lines=4, line_words=4)
    line_bytes = 16
    sets = 4
    a = 0
    b = a + sets * line_bytes  # same index, different tag
    cache.fill_line(a)
    assert cache.lookup(a)
    cache.fill_line(b)
    assert cache.lookup(b)
    assert not cache.lookup(a)


def test_invalidate_flushes():
    cache = DirectMappedICache(0, n_lines=4, line_words=4)
    cache.fill_line(0x40)
    cache.invalidate()
    assert not cache.lookup(0x40)


def test_power_of_two_lines_required():
    with pytest.raises(ValueError):
        DirectMappedICache(0, n_lines=3)


def test_hit_rate():
    cache = DirectMappedICache(0, n_lines=4, line_words=4)
    cache.lookup(0)          # miss
    cache.fill_line(0)
    cache.lookup(0)          # hit
    assert cache.hit_rate == pytest.approx(0.5)


def test_statistical_miss_count_deterministic():
    a = DirectMappedICache(0)
    b = DirectMappedICache(1)
    total_a = a.miss_count(10_000, 0.013)
    total_b = sum(b.miss_count(1_000, 0.013) for _ in range(10))
    assert total_a == total_b  # residue carry conserves misses


def test_statistical_miss_count_bounds():
    cache = DirectMappedICache(0)
    assert cache.miss_count(100, 0.0) == 0
    fresh = DirectMappedICache(0)
    assert fresh.miss_count(100, 1.0) == 100
    with pytest.raises(ValueError):
        cache.miss_count(100, 1.5)
    with pytest.raises(ValueError):
        cache.miss_count(-1, 0.5)
