"""Tests for the MicroBlaze-subset ISA and assembler."""

import pytest

from repro.hw.assembler import AssemblerError, assemble
from repro.hw.isa import ISAError, ISAExecutor
from repro.hw.soc import SoC, SoCConfig


def run_program(source, cpu=0, max_instructions=100_000):
    soc = SoC(SoCConfig(n_cpus=1))
    program = assemble(source)
    executor = ISAExecutor(soc.core(cpu), program)
    soc.sim.process(executor.run(max_instructions))
    soc.sim.run()
    return soc, executor


class TestAssembler:
    def test_labels_and_comments(self):
        program = assemble("""
        # a comment
        start:
            addi r1, r0, 5   ; trailing comment
            br end
            nop
        end:
            halt
        """)
        assert len(program.instructions) == 4
        assert program.instructions[1].imm == 3  # 'end' is instruction 3

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("x:\n nop\nx:\n halt")

    def test_unknown_opcode_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("frobnicate r1, r2, r3")

    def test_undefined_label_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("br nowhere")

    def test_bad_register_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("add r1, r2, r99")

    def test_data_words_and_labels(self):
        program = assemble("""
        .data 0x40010000
        table: .word 10 20 30
        .text 0x40000000
            lwi r1, r0, table
            halt
        """)
        assert program.data[0x40010000] == 10
        assert program.data[0x40010008] == 30
        assert program.symbols["table"] == 0x40010000

    def test_space_directive(self):
        program = assemble("""
        .data 0x40010000
        buf: .space 4
        tail: .word 9
        .text
            halt
        """)
        assert program.symbols["tail"] == 0x40010010

    def test_word_outside_data_rejected(self):
        with pytest.raises(AssemblerError):
            assemble(".word 1 2 3")

    def test_operand_count_checked(self):
        with pytest.raises(AssemblerError):
            assemble("add r1, r2")


class TestExecution:
    def test_arithmetic(self):
        _, ex = run_program("""
            addi r1, r0, 7
            addi r2, r0, 5
            add  r3, r1, r2
            sub  r4, r1, r2
            mul  r5, r1, r2
            swi  r3, r0, 0x40010000
            halt
        """)
        assert ex.state.read(3) == 12
        assert ex.state.read(4) == 2
        assert ex.state.read(5) == 35

    def test_r0_is_hardwired_zero(self):
        _, ex = run_program("""
            addi r0, r0, 99
            halt
        """)
        assert ex.state.read(0) == 0

    def test_logic_and_shifts(self):
        _, ex = run_program("""
            addi r1, r0, 0xF0
            andi r2, r1, 0x3C
            ori  r3, r1, 0x0F
            xori r4, r1, 0xFF
            slli r5, r1, 4
            srli r6, r1, 4
            halt
        """)
        assert ex.state.read(2) == 0x30
        assert ex.state.read(3) == 0xFF
        assert ex.state.read(4) == 0x0F
        assert ex.state.read(5) == 0xF00
        assert ex.state.read(6) == 0x0F

    def test_signed_arithmetic_shift(self):
        _, ex = run_program("""
            addi r1, r0, -8
            srai r2, r1, 1
            halt
        """)
        assert ex.state.read(2) == 0xFFFFFFFC  # -4 in two's complement

    def test_loop_sums_array(self):
        soc, ex = run_program("""
        .data 0x40010000
        arr: .word 1 2 3 4 5 6 7 8 9 10
        .text 0x40000000
            addi r3, r0, 0
            addi r4, r0, arr
            addi r5, r0, 10
        loop:
            lwi  r6, r4, 0
            add  r3, r3, r6
            addi r4, r4, 4
            addi r5, r5, -1
            bnez r5, loop
            swi  r3, r0, 0x40010100
            halt
        """)
        assert soc.ddr.read_word(0x40010100) == 55

    def test_branch_conditions(self):
        _, ex = run_program("""
            addi r1, r0, -5
            bltz r1, neg
            addi r2, r0, 1
            halt
        neg:
            addi r2, r0, 2
            halt
        """)
        assert ex.state.read(2) == 2

    def test_cmp_signed(self):
        _, ex = run_program("""
            addi r1, r0, 3
            addi r2, r0, -7
            cmp  r3, r1, r2    # r3 = r2 - r1 = -10 (negative)
            bltz r3, smaller
            addi r4, r0, 0
            halt
        smaller:
            addi r4, r0, 1
            halt
        """)
        assert ex.state.read(4) == 1

    def test_local_vs_ddr_store(self):
        soc, ex = run_program("""
            addi r1, r0, 42
            swi  r1, r0, 0x100        # local BRAM
            swi  r1, r0, 0x40010000   # DDR
            halt
        """)
        assert soc.core(0).local_mem.read_word(0x100) == 42
        assert soc.ddr.read_word(0x40010000) == 42

    def test_cycle_accounting_includes_cache_and_branches(self):
        _, ex = run_program("""
            addi r1, r0, 3
        loop:
            addi r1, r1, -1
            bnez r1, loop
            halt
        """)
        # Retired: 1 + 3*(addi+bnez) + halt = 8 instructions.
        assert ex.state.instructions_retired == 8
        # Cycles > retired because of branch penalties and I-cache miss.
        assert ex.cycles > 8
        assert ex.icache_misses >= 1

    def test_icache_hits_on_loop(self):
        _, ex = run_program("""
            addi r1, r0, 100
        loop:
            addi r1, r1, -1
            bnez r1, loop
            halt
        """)
        # The loop fits in one or two lines: misses stay tiny.
        assert ex.icache_misses <= 2
        assert ex.core.icache.hits > 150

    def test_instruction_budget_enforced(self):
        with pytest.raises(ISAError):
            run_program("""
            loop:
                br loop
            """, max_instructions=100)

    def test_pc_out_of_range_detected(self):
        with pytest.raises(ISAError):
            run_program("nop")  # falls off the end without halt

    def test_unmapped_address_faults(self):
        with pytest.raises(ISAError):
            run_program("""
                lwi r1, r0, 0x70000000
                halt
            """)
