"""Assembly lint pass: golden diagnostics on seeded-bad fixtures,
clean runs over the shipped routine library, and the WCET bound
cross-checked against the cycle-accurate executor."""

import pytest

from repro.hw.asmlib import ROUTINES, link
from repro.hw.assembler import assemble
from repro.hw.isa import ISAExecutor
from repro.hw.soc import SoC, SoCConfig
from repro.lint.asm import (
    CALLING_CONVENTION_PARAMS,
    lint_program,
    lint_source,
    wcet_bound,
)

pytestmark = pytest.mark.lint


def lint(source, **kwargs):
    return lint_program(assemble(source), **kwargs)


def run(program, max_instructions=5_000_000):
    soc = SoC(SoCConfig(n_cpus=1))
    executor = ISAExecutor(soc.core(0), program)
    soc.sim.process(executor.run(max_instructions))
    soc.sim.run()
    return executor


# ------------------------------------------------------------ bad fixtures
class TestGoldenDiagnostics:
    def test_asm000_assembler_error(self):
        report = lint_source("frobnicate r1, r2")
        assert report.rules() == ["ASM000"]
        assert not report.ok

    def test_asm001_uninitialized_read(self):
        report = lint("add r3, r4, r5\nhalt")
        flagged = report.by_rule("ASM001")
        assert {d.message.split()[2].rstrip(",") for d in flagged} == {"r4", "r5"}

    def test_asm001_one_path_unwritten(self):
        # r4 is written only when the branch is taken past the write.
        report = lint(
            """
                addi r3, r0, 1
                beqz r3, use
                addi r4, r0, 7
            use:
                add  r3, r4, r3
                halt
            """
        )
        assert len(report.by_rule("ASM001")) == 1
        assert "r4" in report.by_rule("ASM001")[0].message

    def test_asm001_silenced_by_params(self):
        report = lint("add r3, r4, r5\nhalt", params=(4, 5))
        assert report.clean

    def test_asm001_locations_name_line_and_label(self):
        report = lint_source("top:\n    add r3, r4, r5\n    halt")
        where = report.by_rule("ASM001")[0].location
        assert "line 2" in where and "top" in where

    def test_asm002_unreachable_run(self):
        report = lint(
            """
                halt
                addi r3, r0, 1
                addi r4, r0, 2
            """
        )
        dead = report.by_rule("ASM002")
        assert len(dead) == 1
        assert "2 instruction(s)" in dead[0].message
        assert report.ok  # warning, not error

    def test_asm003_fall_past_end(self):
        report = lint("addi r3, r0, 1")
        assert report.by_rule("ASM003")
        assert not report.ok

    def test_asm004_misaligned_absolute(self):
        report = lint("lwi r3, r0, 0x40000002\nhalt")
        assert "not word aligned" in report.by_rule("ASM004")[0].message

    def test_asm004_unmapped_absolute(self):
        report = lint("addi r3, r0, 1\nswi r3, r0, 0x70000000\nhalt")
        assert "no memory region" in report.by_rule("ASM004")[0].message

    def test_asm005_branch_outside_program(self):
        report = lint("br 100")
        assert report.by_rule("ASM005")

    def test_asm005_empty_program(self):
        from repro.hw.isa import Program

        empty = Program(instructions=[])
        report = lint_program(empty)
        assert report.by_rule("ASM005")
        assert not wcet_bound(empty).bounded

    def test_asm006_unbounded_loop(self):
        result = wcet_bound(
            assemble(
                """
                    addi r3, r0, 5
                loop:
                    addi r3, r3, -1
                    bnez r3, loop
                    halt
                """
            )
        )
        assert not result.bounded
        assert result.report.by_rule("ASM006")

    def test_asm007_write_to_r0(self):
        report = lint("addi r3, r0, 1\nadd r0, r3, r3\nhalt")
        assert report.by_rule("ASM007")
        assert report.ok  # warning only

    def test_asm008_recursion_rejected(self):
        report = lint(
            """
            main:
                brl r15, recur
                halt
            recur:
                brl r15, recur
                jr  r15
            """
        )
        assert report.by_rule("ASM008")
        assert not report.ok


# ----------------------------------------------------------- clean library
class TestLibraryIsClean:
    @pytest.mark.parametrize("name", sorted(ROUTINES))
    def test_routine_clean_under_calling_convention(self, name):
        report = lint(ROUTINES[name], params=CALLING_CONVENTION_PARAMS)
        assert report.clean, report.format(header=name)

    def test_linked_driver_clean(self):
        program = link(
            """
                addi r5, r0, 0x12345678
                brl  r15, popcount32
                swi  r3, r0, 0x40010000
                halt
            """,
            routines=["popcount32"],
        )
        assert lint_program(program).clean


# ------------------------------------------------------------- WCET bound
DRIVERS = {
    "memcpy_words": (
        """
        .data 0x40010000
        src: .word 11 22 33 44 55
        .data 0x40020000
        dst: .space 5
        .text 0x40000000
            addi r5, r0, src
            addi r6, r0, dst
            addi r7, r0, 5
            brl  r15, memcpy_words
            halt
        """,
        {"memcpy_loop": 5},
    ),
    "array_sum": (
        """
        .data 0x40010000
        arr: .word 10 20 30 40
        .text 0x40000000
            addi r5, r0, arr
            addi r6, r0, 4
            brl  r15, array_sum
            swi  r3, r0, 0x40020000
            halt
        """,
        {"array_sum_loop": 4},
    ),
    "popcount32": (
        """
            addi r5, r0, 0xF0F0F0F0
            brl  r15, popcount32
            swi  r3, r0, 0x40020000
            halt
        """,
        {},
    ),
    "crc32_word": (
        """
            addi r5, r0, 0x12345678
            addi r6, r0, 0xFFFFFFFF
            brl  r15, crc32_word
            swi  r3, r0, 0x40020000
            halt
        """,
        {"crc32_bit": 32},
    ),
    "isqrt32": (
        """
            addi r5, r0, 100
            brl  r15, isqrt32
            swi  r3, r0, 0x40020000
            halt
        """,
        # Newton halves the error each round; the inner division
        # subtracts at least 1 from a dividend <= 100 per iteration.
        {"isqrt_loop": 40, "isqrt_div": 128},
    ),
}


class TestWCETCrossCheck:
    @pytest.mark.parametrize("name", sorted(DRIVERS))
    def test_static_bound_dominates_measured_cycles(self, name):
        source, bounds = DRIVERS[name]
        program = link(source, routines=[name])
        executor = run(program)
        result = wcet_bound(program, loop_bounds=bounds)
        assert result.bounded, result.report.format(header=name)
        assert result.cycles >= executor.cycles, (
            f"{name}: static bound {result.cycles} < measured {executor.cycles}"
        )

    def test_bound_scales_with_loop_bound(self):
        program = assemble(
            """
                addi r3, r0, 5
            loop:
                addi r3, r3, -1
                bnez r3, loop
                halt
            """
        )
        small = wcet_bound(program, loop_bounds={"loop": 5})
        large = wcet_bound(program, loop_bounds={"loop": 50})
        assert small.bounded and large.bounded
        assert large.cycles > small.cycles

    def test_straightline_bound_is_sum_of_costs(self):
        from repro.lint.asm import CostModel

        program = assemble("addi r3, r0, 1\nswi r3, r0, 0x40010000\nhalt")
        model = CostModel()
        expected = sum(model.cost(i) for i in program.instructions)
        assert wcet_bound(program).cycles == expected
