"""Abstract interpretation: interval algebra, annotation parsing, loop
bound inference, the ASM1xx audit rules, memory/stack proofs, and the
path-pruned verified WCET."""

import pytest

from repro.hw.asmlib import ROUTINES
from repro.hw.assembler import assemble
from repro.kernel.microkernel import TaskBinding
from repro.lint.absint import (
    DEFAULT_STACK_BUDGET_WORDS,
    EXPECTED_COUNTED,
    TOP,
    AnnotationError,
    Interval,
    analyse,
    audit_annotation_rules,
    audit_routine,
    const,
    kernel_driver_source,
    parse_annotations,
    refine_branch,
    verified_wcet,
)
from repro.lint.asm import ProgramAnalysis

pytestmark = pytest.mark.lint

MAXU = 0xFFFF_FFFF


# --------------------------------------------------------------- intervals
class TestInterval:
    def test_join_is_hull(self):
        assert Interval(1, 3).join(Interval(7, 9)) == Interval(1, 9)

    def test_meet_intersects_or_is_empty(self):
        assert Interval(1, 5).meet(Interval(3, 9)) == Interval(3, 5)
        assert Interval(1, 2).meet(Interval(5, 9)) is None

    def test_widen_jumps_to_extremes(self):
        grown = Interval(0, 5).widen(Interval(0, 6))
        assert grown.hi == MAXU and grown.lo == 0
        assert Interval(0, 5).widen(Interval(0, 5)) == Interval(0, 5)

    def test_signed_bounds(self):
        assert const(MAXU).signed_bounds() == (-1, -1)
        assert const(5).signed_bounds() == (5, 5)
        assert TOP.signed_bounds() == (-(2**31), 2**31 - 1)

    def test_const_and_top_predicates(self):
        assert const(7).is_const and const(7).value == 7
        assert TOP.is_top and not TOP.is_const

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            Interval(5, 1)


class TestRefineBranch:
    def test_beqz_splits_zero(self):
        taken, fall = refine_branch("beqz", Interval(0, 5))
        assert taken == Interval(0, 0)
        assert fall == Interval(1, 5)

    def test_beqz_on_nonzero_is_infeasible(self):
        taken, fall = refine_branch("beqz", const(1))
        assert taken is None
        assert fall == const(1)

    def test_bnez_mirrors_beqz(self):
        taken, fall = refine_branch("bnez", Interval(0, 5))
        assert taken == Interval(1, 5)
        assert fall == Interval(0, 0)


# ------------------------------------------------------------- annotations
class TestAnnotations:
    def test_trailing_bound_and_param(self):
        ann = parse_annotations(
            "#@ param r5 in 1..10\n"
            "start:\n"
            "loop:   #@ bound=32\n"
            "    addi r3, r3, -1\n"
            "    bnez r3, loop\n"
            "    halt\n"
        )
        assert ann.loop_bounds == {"loop": 32}
        assert ann.reg_ranges[5] == Interval(1, 10)

    def test_bad_bound_rejected(self):
        with pytest.raises(AnnotationError):
            parse_annotations("loop:  #@ bound=banana\n")

    def test_bad_param_range_rejected(self):
        with pytest.raises(AnnotationError):
            parse_annotations("#@ param r5 in 9..1\n")


# --------------------------------------------------------- bound inference
def analyse_source(source, **kwargs):
    return analyse(assemble(source), **kwargs)


class TestLoopInference:
    def test_do_while_countdown(self):
        result = analyse_source(
            "    addi r3, r0, 5\n"
            "loop:\n"
            "    addi r3, r3, -1\n"
            "    bnez r3, loop\n"
            "    halt\n"
        )
        assert result.ok
        assert sorted(result.inferred_bounds().values()) == [5]

    def test_while_style_guard_at_top(self):
        result = analyse_source(
            "    addi r3, r0, 4\n"
            "loop:\n"
            "    beqz r3, done\n"
            "    addi r3, r3, -1\n"
            "    br loop\n"
            "done:\n"
            "    halt\n"
        )
        assert result.ok
        assert sorted(result.inferred_bounds().values()) == [5]

    def test_interval_entry_uses_upper_bound(self):
        result = analyse_source(
            "#@ param r3 in 1..9\n"
            "loop:\n"
            "    addi r3, r3, -1\n"
            "    bnez r3, loop\n"
            "    halt\n",
            reg_ranges=parse_annotations("#@ param r3 in 1..9\n").reg_ranges,
        )
        assert sorted(result.inferred_bounds().values()) == [9]

    def test_data_dependent_loop_not_counted(self):
        # The counter comes out of memory: TOP, so no bound is inferable.
        result = analyse_source(
            "    lwi r3, r0, 0x40008000\n"
            "loop:\n"
            "    addi r3, r3, -1\n"
            "    bnez r3, loop\n"
            "    halt\n"
        )
        assert result.ok  # analysis converges (widening), just unbounded
        assert result.inferred_bounds() == {}

    def test_driver_context_tightens_kernel_bound(self):
        """The memcpy driver passes a small n, so the same loop that is
        annotated 64 in the routine contract infers far tighter."""
        source = kernel_driver_source("memcpy_words", seed=1)
        wcet = verified_wcet(
            assemble(source), annotations=parse_annotations(source)
        )
        assert wcet.absint.ok
        assert wcet.tightened
        inferred = wcet.absint.inferred_bounds()
        assert inferred and max(inferred.values()) < 64


# ------------------------------------------------------- ASM1xx audit rules
def audit_source(source):
    annotations = parse_annotations(source)
    program = assemble(source)
    analysis = ProgramAnalysis(program, entry=0)
    result = analyse(
        program, reg_ranges=annotations.reg_ranges, analysis=analysis
    )
    return audit_annotation_rules(result, annotations, analysis), result


class TestAnnotationRules:
    def test_asm101_missing_but_inferable_is_warning(self):
        report, _ = audit_source(
            "    addi r3, r0, 5\n"
            "loop:\n"
            "    addi r3, r3, -1\n"
            "    bnez r3, loop\n"
            "    halt\n"
        )
        found = report.by_rule("ASM101")
        assert found and report.ok  # warning only

    def test_asm101_missing_and_not_inferable_is_error(self):
        report, _ = audit_source(
            "    lwi r3, r0, 0x40008000\n"
            "loop:\n"
            "    addi r3, r3, -1\n"
            "    bnez r3, loop\n"
            "    halt\n"
        )
        found = report.by_rule("ASM101")
        assert found and not report.ok

    def test_asm102_loose_annotation_is_warning(self):
        report, _ = audit_source(
            "    addi r3, r0, 5\n"
            "loop:   #@ bound=100\n"
            "    addi r3, r3, -1\n"
            "    bnez r3, loop\n"
            "    halt\n"
        )
        found = report.by_rule("ASM102")
        assert found and report.ok

    def test_asm103_unsound_annotation_is_error(self):
        report, _ = audit_source(
            "    addi r3, r0, 5\n"
            "loop:   #@ bound=3\n"
            "    addi r3, r3, -1\n"
            "    bnez r3, loop\n"
            "    halt\n"
        )
        found = report.by_rule("ASM103")
        assert found and not report.ok

    def test_exact_annotation_is_silent(self):
        report, _ = audit_source(
            "    addi r3, r0, 5\n"
            "loop:   #@ bound=5\n"
            "    addi r3, r3, -1\n"
            "    bnez r3, loop\n"
            "    halt\n"
        )
        assert report.clean


# --------------------------------------------------- memory / stack proofs
class TestMemorySafety:
    def test_in_range_store_is_proven(self):
        result = analyse_source("addi r3, r0, 7\nswi r3, r0, 0x40010000\nhalt")
        assert result.ok and not result.report.by_rule("ASM104")

    def test_misaligned_constant_is_asm104(self):
        result = analyse_source("lwi r3, r0, 0x123\nhalt")
        assert result.report.by_rule("ASM104")

    def test_out_of_map_address_is_asm104(self):
        result = analyse_source("swi r0, r0, 0x70000000\nhalt")
        assert result.report.by_rule("ASM104")

    def test_unprovable_top_address_is_asm104(self):
        result = analyse_source(
            "lwi r4, r0, 0x40008000\nswi r0, r4, 0\nhalt"
        )
        assert result.report.by_rule("ASM104")


class TestStackSafety:
    CALL_CHAIN = (
        "    addi r3, r0, 1\n"
        "    brl r15, leaf\n"
        "    halt\n"
        "leaf:\n"
        "    addi r4, r0, 2\n"
        "    jr r15\n"
    )

    def test_depth_within_budget_is_proven(self):
        result = analyse_source(self.CALL_CHAIN)
        assert result.ok
        assert 0 < result.stack_words <= result.stack_budget

    def test_overflow_is_asm105(self):
        result = analyse_source(self.CALL_CHAIN, stack_budget=1)
        assert result.report.by_rule("ASM105")

    def test_budget_matches_kernel_stack_allocation(self):
        """The lint default must mirror the microkernel's per-task stack
        so a proof here is a proof about real task contexts."""
        assert DEFAULT_STACK_BUDGET_WORDS == TaskBinding.stack_words


# ------------------------------------------------------------ path pruning
class TestPathPruning:
    def test_infeasible_branch_excluded_from_wcet(self):
        wcet = verified_wcet(
            assemble(
                "    addi r3, r0, 1\n"
                "    beqz r3, slow\n"
                "    halt\n"
                "slow:\n"
                "    addi r4, r0, 1\n"
                "    addi r4, r4, 1\n"
                "    halt\n"
            )
        )
        assert wcet.absint.ok
        assert wcet.absint.infeasible_edges
        assert wcet.verified_cycles < wcet.annotated_cycles
        assert wcet.tightened

    def test_feasible_both_ways_is_not_pruned(self):
        wcet = verified_wcet(
            assemble(
                "#@ param r3 in 0..1\n"
                "    beqz r3, other\n"
                "    halt\n"
                "other:\n"
                "    halt\n"
            ),
            reg_ranges=parse_annotations("#@ param r3 in 0..1\n").reg_ranges,
        )
        assert wcet.verified_cycles == wcet.annotated_cycles


# ------------------------------------------------------------- asmlib audit
class TestRoutineAudits:
    @pytest.mark.parametrize("name", sorted(ROUTINES))
    def test_every_routine_contract_verifies(self, name):
        audit = audit_routine(name)
        assert audit.ok, audit.report.format()

    @pytest.mark.parametrize(
        "name", [k for k, loops in sorted(EXPECTED_COUNTED.items()) if loops]
    )
    def test_expected_loops_are_counted(self, name):
        audit = audit_routine(name)
        counted = {
            summary.label
            for summary in audit.result.loops.values()
            if summary.counted and summary.inferred is not None
        }
        assert set(EXPECTED_COUNTED[name]) <= counted
