"""Repo-determinism AST lint: the DET rules on fixtures, and the live
guarantee that the simulator's own hot paths stay clean."""

import pytest

from repro.lint.determinism import (
    DEFAULT_PATHS,
    lint_paths,
    lint_python_source,
)

pytestmark = pytest.mark.lint


def rules_of(source):
    return lint_python_source(source, "fixture.py").rules()


class TestDet001WallClock:
    @pytest.mark.parametrize(
        "call",
        [
            "time.time()",
            "time.time_ns()",
            "time.monotonic()",
            "time.perf_counter()",
            "time.process_time()",
        ],
    )
    def test_time_module_reads_flagged(self, call):
        assert rules_of(f"import time\nx = {call}\n") == ["DET001"]

    def test_datetime_now_flagged(self):
        src = "import datetime\nd = datetime.datetime.now()\n"
        assert rules_of(src) == ["DET001"]

    def test_unrelated_time_attribute_is_fine(self):
        # An object with a .time() method is not the time module.
        assert rules_of("x = event.time()\n") == []


class TestDet002UnseededRandom:
    def test_module_level_calls_flagged(self):
        assert rules_of("import random\nx = random.random()\n") == ["DET002"]
        assert rules_of("import random\nx = random.randint(0, 9)\n") == ["DET002"]

    def test_unseeded_constructor_flagged(self):
        assert rules_of("import random\nr = random.Random()\n") == ["DET002"]

    def test_seeded_constructor_is_fine(self):
        assert rules_of("import random\nr = random.Random(42)\n") == []

    def test_instance_methods_are_fine(self):
        src = "import random\nr = random.Random(1)\nx = r.randint(0, 9)\n"
        assert rules_of(src) == []


class TestDet003SetIteration:
    def test_for_over_set_display_flagged(self):
        assert rules_of("for x in {1, 2, 3}:\n    pass\n") == ["DET003"]

    def test_for_over_set_call_flagged(self):
        assert rules_of("for x in set(items):\n    pass\n") == ["DET003"]

    def test_comprehension_over_set_flagged(self):
        assert rules_of("ys = [y for y in {1, 2}]\n") == ["DET003"]

    def test_sorted_set_is_fine(self):
        assert rules_of("for x in sorted({1, 2, 3}):\n    pass\n") == []

    def test_list_iteration_is_fine(self):
        assert rules_of("for x in [1, 2, 3]:\n    pass\n") == []


class TestHarness:
    def test_syntax_error_is_det000(self):
        report = lint_python_source("def f(:\n", "broken.py")
        assert report.rules() == ["DET000"] and not report.ok

    def test_locations_carry_file_and_line(self):
        report = lint_python_source("import time\nx = time.time()\n", "mod.py")
        assert report.diagnostics[0].location == "mod.py:2"

    def test_missing_file_is_det000(self, tmp_path):
        report = lint_paths([tmp_path / "missing.py"])
        assert report.rules() == ["DET000"]

    def test_directory_scan(self, tmp_path):
        (tmp_path / "a.py").write_text("import time\nx = time.time()\n")
        (tmp_path / "b.py").write_text("x = 1\n")
        report = lint_paths([tmp_path])
        assert report.rules() == ["DET001"]


def test_simulator_hot_paths_are_clean():
    """The live guarantee: src/repro/{sim,hw,kernel} stay deterministic."""
    import repro

    from pathlib import Path

    base = Path(repro.__file__).parent
    paths = [base / Path(p).name for p in DEFAULT_PATHS]
    report = lint_paths(paths)
    assert report.clean, report.format()
