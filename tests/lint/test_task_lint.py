"""Task-set lint pass: raw-row validation, schedulability checks on
seeded-bad sets, and clean runs over the shipped example workloads."""

import pytest

from repro.analysis.partitioning import partition
from repro.analysis.promotion import assign_promotions
from repro.core.task import PeriodicTask, TaskSet
from repro.lint.diagnostics import LintError, Severity
from repro.lint.tasks import check_taskset, lint_task_rows, lint_taskset
from repro.workloads.automotive import build_automotive_taskset, prepare_taskset

pytestmark = pytest.mark.lint


def rows(*triples):
    return [
        {"name": n, "wcet": c, "period": t, "deadline": d}
        for n, c, t, d in triples
    ]


# ---------------------------------------------------------------- raw rows
class TestTaskRows:
    def test_clean_rows(self):
        report = lint_task_rows(rows(("a", 10, 100, None), ("b", 5, 50, 40)))
        assert report.clean

    def test_task001_non_integer(self):
        report = lint_task_rows(rows(("a", "ten", 100, None)))
        assert "not an integer" in report.by_rule("TASK001")[0].message

    def test_task001_non_positive_wcet(self):
        report = lint_task_rows(rows(("a", 0, 100, None)))
        assert report.by_rule("TASK001")

    def test_task001_deadline_exceeds_period(self):
        report = lint_task_rows(rows(("a", 10, 100, 200)))
        assert any("exceeds period" in d.message for d in report.by_rule("TASK001"))

    def test_task001_wcet_exceeds_deadline(self):
        report = lint_task_rows(rows(("a", 60, 100, 50)))
        assert any("trivially unschedulable" in d.message for d in report)

    def test_task009_duplicate_names(self):
        report = lint_task_rows(rows(("a", 10, 100, None), ("a", 5, 50, None)))
        dup = report.by_rule("TASK009")
        assert len(dup) == 1 and "row 1" in dup[0].message

    def test_every_bad_row_reported(self):
        """One diagnostic per offence, not fail-on-first."""
        report = lint_task_rows(rows(("a", 0, 100, None), ("b", 10, -5, None)))
        locations = {d.location for d in report.by_rule("TASK001")}
        assert locations == {"task a (row 1)", "task b (row 2)"}


# ---------------------------------------------------------------- task sets
def dm(tasks):
    return TaskSet(tasks).with_deadline_monotonic_priorities()


class TestTaskSetLint:
    def test_clean_quickstart_set(self):
        toy = dm(
            [
                PeriodicTask(name="wheel-speed", wcet=12_000, period=60_000),
                PeriodicTask(
                    name="abs-monitor", wcet=20_000, period=100_000, deadline=80_000
                ),
                PeriodicTask(name="engine-poll", wcet=30_000, period=150_000),
            ]
        )
        toy = assign_promotions(partition(toy, 2), 2, tick=10_000)
        assert lint_taskset(toy, 2, tick=10_000).clean

    def test_clean_automotive_workload(self):
        taskset = prepare_taskset(build_automotive_taskset(0.5, 2), 2, tick=5_000_000)
        report = check_taskset(taskset, 2, tick=5_000_000)
        assert report.ok

    def test_task002_overloaded_processor(self):
        overloaded = dm(
            [
                PeriodicTask(name="hog-a", wcet=60_000, period=100_000),
                PeriodicTask(name="hog-b", wcet=60_000, period=100_000),
            ]
        )
        report = lint_taskset(overloaded, 1)
        assert report.by_rule("TASK002") and report.by_rule("TASK008")

    def test_task003_deadline_unreachable(self):
        # U = 0.53 < 1 but the victim's busy period overruns D=35:
        # w = 30 + ceil(w/20)*10 -> 40 > 35.
        victim = PeriodicTask(
            name="victim", wcet=30, period=1_000, deadline=35, high_priority=0
        )
        hog = PeriodicTask(name="hog", wcet=10, period=20, high_priority=1)
        report = lint_taskset(TaskSet([victim, hog]), 1)
        bad = report.by_rule("TASK003")
        assert len(bad) == 1 and "victim" in bad[0].location

    def test_task004_duplicate_upper_band_priority(self):
        twins = TaskSet(
            [
                PeriodicTask(name="a", wcet=10, period=100, high_priority=3),
                PeriodicTask(name="b", wcet=10, period=100, high_priority=3),
            ]
        )
        report = lint_taskset(twins, 1)
        dup = report.by_rule("TASK004")
        assert dup and dup[0].severity == Severity.WARNING

    def test_task005_band_order_inversion(self):
        crossed = TaskSet(
            [
                PeriodicTask(
                    name="a", wcet=10, period=100, low_priority=1, high_priority=0
                ),
                PeriodicTask(
                    name="b", wcet=10, period=200, low_priority=0, high_priority=1
                ),
            ]
        )
        report = lint_taskset(crossed, 1)
        assert report.by_rule("TASK005")

    def test_task006_promotion_past_slack(self):
        # Alone on its cpu: W = C = 50, slack = D - W = 50; U = 60 is too late.
        late = TaskSet(
            [PeriodicTask(name="late", wcet=50, period=100, promotion=60)]
        )
        report = lint_taskset(late, 1)
        assert report.by_rule("TASK006")

    def test_task006_tick_granularity(self):
        # U = slack is fine without a tick but leaves no observation
        # latency once promotions are quantized.
        tight = TaskSet(
            [PeriodicTask(name="tight", wcet=50, period=100, promotion=50)]
        )
        assert lint_taskset(tight, 1).clean
        assert lint_taskset(tight, 1, tick=20).by_rule("TASK006")

    def test_task007_cpu_out_of_range(self):
        stray = TaskSet([PeriodicTask(name="stray", wcet=10, period=100, cpu=5)])
        report = lint_taskset(stray, 2)
        assert report.by_rule("TASK007")

    def test_task008_total_overload(self):
        heavy = dm(
            [
                PeriodicTask(name=f"t{i}", wcet=90, period=100, cpu=i % 2)
                for i in range(3)
            ]
        )
        report = lint_taskset(heavy, 2)
        assert report.by_rule("TASK008")

    def test_check_taskset_raises_on_errors(self):
        overloaded = dm(
            [
                PeriodicTask(name="hog-a", wcet=60_000, period=100_000),
                PeriodicTask(name="hog-b", wcet=60_000, period=100_000),
            ]
        )
        with pytest.raises(LintError) as excinfo:
            check_taskset(overloaded, 1)
        assert "TASK002" in str(excinfo.value)
        assert excinfo.value.report.by_rule("TASK002")
