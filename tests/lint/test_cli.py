"""The repro-lint command line front end and its self-check smoke mode."""

import io
import json

import pytest

from repro.lint.cli import main, self_check
from repro.trace.export import trace_to_json
from repro.trace.recorder import TraceRecorder

pytestmark = pytest.mark.lint

GOOD_ASM = """
    addi r3, r0, 5
loop:
    addi r3, r3, -1
    bnez r3, loop
    halt
"""

BAD_ASM = "add r3, r4, r5\nhalt"

GOOD_CSV = "name,wcet,period,deadline\na,10,100,\nb,5,50,40\n"
BAD_CSV = "name,wcet,period,deadline\na,0,100,\na,5,50,\n"


def write(tmp_path, name, content):
    path = tmp_path / name
    path.write_text(content)
    return str(path)


class TestSelfCheck:
    def test_self_check_passes(self):
        out = io.StringIO()
        assert self_check(out=out) == 0
        assert "self-check: PASS" in out.getvalue()

    def test_main_flag(self, capsys):
        assert main(["--self-check"]) == 0
        assert "PASS" in capsys.readouterr().out


class TestAsmCommand:
    def test_clean_file(self, tmp_path, capsys):
        assert main(["asm", write(tmp_path, "good.s", GOOD_ASM)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_bad_file_fails(self, tmp_path, capsys):
        assert main(["asm", write(tmp_path, "bad.s", BAD_ASM)]) == 1
        assert "ASM001" in capsys.readouterr().out

    def test_syntax_error_is_asm000(self, tmp_path, capsys):
        assert main(["asm", write(tmp_path, "syn.s", "bogus r1")]) == 1
        assert "ASM000" in capsys.readouterr().err

    def test_params_silence_argument_reads(self, tmp_path):
        path = write(tmp_path, "p.s", BAD_ASM)
        assert main(["asm", path, "--param", "r4", "--param", "r5"]) == 0

    def test_wcet_with_bound(self, tmp_path, capsys):
        path = write(tmp_path, "loop.s", GOOD_ASM)
        assert main(["asm", path, "--wcet", "--loop-bound", "loop=5"]) == 0
        assert "static WCET bound:" in capsys.readouterr().out

    def test_wcet_missing_bound_fails(self, tmp_path, capsys):
        path = write(tmp_path, "loop.s", GOOD_ASM)
        assert main(["asm", path, "--wcet"]) == 1
        assert "unbounded" in capsys.readouterr().out


class TestTasksCommand:
    def test_clean_table(self, tmp_path, capsys):
        assert main(["tasks", write(tmp_path, "ok.csv", GOOD_CSV), "--cpus", "2"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_bad_rows_fail(self, tmp_path, capsys):
        assert main(["tasks", write(tmp_path, "bad.csv", BAD_CSV), "--cpus", "2"]) == 1
        out = capsys.readouterr().out
        assert "TASK001" in out and "TASK009" in out

    def test_overload_fails(self, tmp_path, capsys):
        csv = "a,60,100,\nb,60,100,\n"
        assert main(["tasks", write(tmp_path, "hot.csv", csv), "--cpus", "1"]) == 1
        assert "TASK002" in capsys.readouterr().out


class TestTraceCommand:
    def test_racy_trace_fails(self, tmp_path, capsys):
        trace = TraceRecorder()
        trace.record(10, "access", cpu=0, info="addr=0x40010000 op=write")
        trace.record(20, "access", cpu=1, info="addr=0x40010000 op=write")
        path = write(tmp_path, "racy.json", trace_to_json(trace))
        assert main(["trace", path]) == 1
        assert "RACE001" in capsys.readouterr().out

    def test_clean_trace(self, tmp_path, capsys):
        trace = TraceRecorder()
        trace.record(0, "acquire", cpu=0, info="lock=1")
        trace.record(1, "access", cpu=0, info="addr=0x40010000 op=write")
        trace.record(2, "unlock", cpu=0, info="lock=1")
        path = write(tmp_path, "ok.json", trace_to_json(trace))
        assert main(["trace", path]) == 0


def test_no_command_prints_help():
    assert main([]) == 2


@pytest.mark.parametrize("command", ["asm", "tasks", "trace"])
def test_missing_file_is_an_operational_error(command, tmp_path, capsys):
    """Exit 2 (tool could not run), distinct from exit 1 (findings)."""
    assert main([command, str(tmp_path / "missing")]) == 2
    assert "cannot read" in capsys.readouterr().err


def test_empty_asm_file_reports_asm005(tmp_path, capsys):
    assert main(["asm", write(tmp_path, "empty.s", "")]) == 1
    assert "ASM005" in capsys.readouterr().out


class TestJsonFormat:
    def test_clean_asm_json(self, tmp_path, capsys):
        path = write(tmp_path, "good.s", GOOD_ASM)
        assert main(["asm", path, "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "asm"
        assert payload["report"] == {
            "diagnostics": [],
            "errors": 0,
            "warnings": 0,
            "ok": True,
        }

    def test_findings_carry_stable_schema(self, tmp_path, capsys):
        path = write(tmp_path, "bad.s", BAD_ASM)
        assert main(["asm", path, "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        diag = payload["report"]["diagnostics"][0]
        assert set(diag) == {"rule", "severity", "message", "location", "hint"}
        assert diag["rule"] == "ASM001" and diag["severity"] == "error"

    def test_trace_json(self, tmp_path, capsys):
        trace = TraceRecorder()
        trace.record(10, "access", cpu=0, info="addr=0x40010000 op=write")
        trace.record(20, "access", cpu=1, info="addr=0x40010000 op=write")
        path = write(tmp_path, "racy.json", trace_to_json(trace))
        assert main(["trace", path, "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        rules = [d["rule"] for d in payload["report"]["diagnostics"]]
        assert "RACE001" in rules

    def test_tasks_json(self, tmp_path, capsys):
        path = write(tmp_path, "ok.csv", GOOD_CSV)
        assert main(["tasks", path, "--cpus", "2", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["rows"]["ok"] and payload["taskset"]["ok"]


class TestVerifiedFlag:
    ANNOTATED = (
        "    addi r3, r0, 5\n"
        "loop:   #@ bound=5\n"
        "    addi r3, r3, -1\n"
        "    bnez r3, loop\n"
        "    halt\n"
    )

    def test_verified_bound_printed(self, tmp_path, capsys):
        path = write(tmp_path, "ann.s", self.ANNOTATED)
        assert main(["asm", path, "--verified"]) == 0
        assert "verified WCET bound:" in capsys.readouterr().out

    def test_verified_json_payload(self, tmp_path, capsys):
        path = write(tmp_path, "ann.s", self.ANNOTATED)
        assert main(["asm", path, "--verified", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        verified = payload["verified"]
        assert verified["ok"]
        assert verified["verified_cycles"] <= verified["annotated_cycles"]

    def test_unsound_annotation_fails(self, tmp_path, capsys):
        source = self.ANNOTATED.replace("bound=5", "bound=3")
        path = write(tmp_path, "bad.s", source)
        assert main(["asm", path, "--verified"]) == 1


class TestAuditCommand:
    def test_single_kernel_audit(self, capsys):
        assert main(["audit", "--kernel", "popcount32"]) == 0
        out = capsys.readouterr().out
        assert "popcount32" in out and "ver/meas" in out

    def test_unknown_kernel_is_operational_error(self, capsys):
        assert main(["audit", "--kernel", "nope"]) == 2
        assert "unknown kernel" in capsys.readouterr().err

    def test_audit_json(self, capsys):
        assert main(["audit", "--kernel", "popcount32", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        audit = payload["audits"][0]
        assert audit["measured"] <= audit["verified"] <= audit["annotated"]
        assert all(check["ok"] for check in audit["checks"])

    def test_routine_mode(self, capsys):
        assert main(["audit", "--kernel", "crc32_word", "--routines"]) == 0
        out = capsys.readouterr().out
        assert "routine audit: crc32_word" in out and "counted=True" in out


class TestDeterminismCommand:
    def test_default_paths_are_clean(self, capsys):
        assert main(["determinism"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_bad_file_fails(self, tmp_path, capsys):
        path = write(tmp_path, "bad.py", "import time\nx = time.time()\n")
        assert main(["determinism", path]) == 1
        assert "DET001" in capsys.readouterr().out

    def test_json_output(self, tmp_path, capsys):
        path = write(tmp_path, "bad.py", "for x in set(items):\n    pass\n")
        assert main(["determinism", path, "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["report"]["diagnostics"][0]["rule"] == "DET003"

    def test_missing_path_is_operational_error(self, tmp_path, capsys):
        assert main(["determinism", str(tmp_path / "missing.py")]) == 2
        assert "cannot read" in capsys.readouterr().err


def test_internal_crash_exits_2(tmp_path, capsys):
    """Malformed trace JSON crashes the loader: exit 2, not a finding."""
    path = write(tmp_path, "broken.json", "{not json")
    assert main(["trace", path]) == 2
    assert "internal error" in capsys.readouterr().err
