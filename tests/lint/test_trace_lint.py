"""Trace concurrency pass: lockset races, lock-order deadlocks, and the
event emission of the sync engine / ISA executor feeding the checker."""

import pytest

from repro.hw.asmlib import link
from repro.hw.isa import ISAExecutor
from repro.hw.soc import SoC, SoCConfig
from repro.hw.sync_engine import SynchronizationEngine
from repro.lint.concurrency import lint_trace
from repro.sim.engine import Simulator
from repro.trace.recorder import TraceRecorder

pytestmark = pytest.mark.lint


def trace_of(*events):
    trace = TraceRecorder()
    for time, kind, cpu, info in events:
        trace.record(time, kind, cpu=cpu, info=info)
    return trace


# ------------------------------------------------------------------ races
class TestRaceDetection:
    def test_race001_unguarded_two_cpu_write(self):
        report = lint_trace(
            trace_of(
                (10, "access", 0, "addr=0x40010000 op=write"),
                (20, "access", 1, "addr=0x40010000 op=write"),
            )
        )
        assert report.by_rule("RACE001")

    def test_race001_write_read_pair(self):
        report = lint_trace(
            trace_of(
                (10, "access", 0, "addr=0x40010000 op=write"),
                (20, "access", 1, "addr=0x40010000 op=read"),
            )
        )
        assert report.by_rule("RACE001")

    def test_read_only_sharing_is_not_a_race(self):
        report = lint_trace(
            trace_of(
                (10, "access", 0, "addr=0x40010000 op=read"),
                (20, "access", 1, "addr=0x40010000 op=read"),
            )
        )
        assert report.clean

    def test_single_cpu_writes_are_not_a_race(self):
        report = lint_trace(
            trace_of(
                (10, "access", 0, "addr=0x40010000 op=write"),
                (20, "access", 0, "addr=0x40010000 op=write"),
            )
        )
        assert report.clean

    def test_common_lock_suppresses_race(self):
        report = lint_trace(
            trace_of(
                (0, "acquire", 0, "lock=2"),
                (1, "access", 0, "addr=0x40010000 op=write"),
                (2, "unlock", 0, "lock=2"),
                (10, "acquire", 1, "lock=2"),
                (11, "access", 1, "addr=0x40010000 op=write"),
                (12, "unlock", 1, "lock=2"),
            )
        )
        assert report.clean

    def test_disjoint_locks_still_race(self):
        report = lint_trace(
            trace_of(
                (0, "acquire", 0, "lock=1"),
                (1, "access", 0, "addr=0x40010000 op=write"),
                (2, "unlock", 0, "lock=1"),
                (10, "acquire", 1, "lock=2"),
                (11, "access", 1, "addr=0x40010000 op=write"),
                (12, "unlock", 1, "lock=2"),
            )
        )
        assert report.by_rule("RACE001")

    def test_race002_lock_leaked_at_end(self):
        report = lint_trace(trace_of((0, "acquire", 0, "lock=3")))
        leak = report.by_rule("RACE002")
        assert leak and report.ok  # warning only

    def test_race003_release_without_acquire(self):
        report = lint_trace(trace_of((0, "unlock", 0, "lock=3")))
        assert report.by_rule("RACE003")

    def test_race003_reacquire_held_lock(self):
        report = lint_trace(
            trace_of((0, "acquire", 0, "lock=3"), (1, "acquire", 0, "lock=3"))
        )
        assert report.by_rule("RACE003")

    def test_race003_malformed_payload(self):
        report = lint_trace(trace_of((0, "access", 0, "op=write")))
        assert report.by_rule("RACE003")


# -------------------------------------------------------------- deadlocks
class TestDeadlockDetection:
    def test_dead001_ab_ba_ordering(self):
        report = lint_trace(
            trace_of(
                (0, "acquire", 0, "lock=0"),
                (1, "acquire", 0, "lock=1"),
                (2, "unlock", 0, "lock=1"),
                (3, "unlock", 0, "lock=0"),
                (4, "acquire", 1, "lock=1"),
                (5, "acquire", 1, "lock=0"),
                (6, "unlock", 1, "lock=0"),
                (7, "unlock", 1, "lock=1"),
            )
        )
        cycle = report.by_rule("DEAD001")
        assert len(cycle) == 1
        assert "cpu 0" in cycle[0].message and "cpu 1" in cycle[0].message

    def test_consistent_order_is_clean(self):
        report = lint_trace(
            trace_of(
                (0, "acquire", 0, "lock=0"),
                (1, "acquire", 0, "lock=1"),
                (2, "unlock", 0, "lock=1"),
                (3, "unlock", 0, "lock=0"),
                (4, "acquire", 1, "lock=0"),
                (5, "acquire", 1, "lock=1"),
                (6, "unlock", 1, "lock=1"),
                (7, "unlock", 1, "lock=0"),
            )
        )
        assert report.clean

    def test_dead002_stuck_barrier(self):
        report = lint_trace(trace_of((0, "barrier", 0, "barrier=1 width=2")))
        assert report.by_rule("DEAD002")

    def test_completed_barrier_is_clean(self):
        report = lint_trace(
            trace_of(
                (0, "barrier", 0, "barrier=1 width=2"),
                (5, "barrier", 1, "barrier=1 width=2"),
            )
        )
        assert report.clean

    def test_schedule_events_are_ignored(self):
        trace = TraceRecorder()
        trace.record(0, "release", job="wheel-speed#0")  # job release, not a lock
        trace.record(0, "dispatch", cpu=0, job="wheel-speed#0")
        trace.record(10, "finish", cpu=0, job="wheel-speed#0")
        assert lint_trace(trace).clean

    def test_legacy_release_with_lock_payload_still_accepted(self):
        """Old traces spelled lock releases ``release lock=N``."""
        report = lint_trace(
            trace_of(
                (0, "acquire", 0, "lock=2"),
                (1, "access", 0, "addr=0x40010000 op=write"),
                (2, "release", 0, "lock=2"),
                (10, "acquire", 1, "lock=2"),
                (11, "access", 1, "addr=0x40010000 op=write"),
                (12, "release", 1, "lock=2"),
            )
        )
        assert report.clean


# ---------------------------------------------------- release/unlock parity
#: Scenarios whose verdict must not depend on the lock-release spelling.
#: Each is (name, events) with ``release`` as a placeholder kind that the
#: parametrised test rewrites to either spelling.
_RELEASE_SCENARIOS = [
    (
        "guarded_clean",
        [
            (0, "acquire", 0, "lock=2"),
            (1, "access", 0, "addr=0x40010000 op=write"),
            (2, "release", 0, "lock=2"),
            (10, "acquire", 1, "lock=2"),
            (11, "access", 1, "addr=0x40010000 op=write"),
            (12, "release", 1, "lock=2"),
        ],
    ),
    (
        "disjoint_locks_race",
        [
            (0, "acquire", 0, "lock=1"),
            (1, "access", 0, "addr=0x40010000 op=write"),
            (2, "release", 0, "lock=1"),
            (10, "acquire", 1, "lock=2"),
            (11, "access", 1, "addr=0x40010000 op=write"),
            (12, "release", 1, "lock=2"),
        ],
    ),
    (
        "lock_order_deadlock",
        [
            (0, "acquire", 0, "lock=0"),
            (1, "acquire", 0, "lock=1"),
            (2, "release", 0, "lock=1"),
            (3, "release", 0, "lock=0"),
            (4, "acquire", 1, "lock=1"),
            (5, "acquire", 1, "lock=0"),
            (6, "release", 1, "lock=0"),
            (7, "release", 1, "lock=1"),
        ],
    ),
    (
        "release_without_acquire",
        [(0, "release", 0, "lock=3")],
    ),
]


class TestReleaseUnlockEquivalence:
    """Legacy ``release lock=N`` and new ``unlock lock=N`` are synonyms:
    both accepted, identical verdicts, rule for rule."""

    @staticmethod
    def _spelled(events, spelling):
        return trace_of(
            *(
                (time, spelling if kind == "release" else kind, cpu, info)
                for time, kind, cpu, info in events
            )
        )

    @pytest.mark.parametrize(
        "name,events", _RELEASE_SCENARIOS, ids=[n for n, _ in _RELEASE_SCENARIOS]
    )
    def test_identical_verdicts(self, name, events):
        legacy = lint_trace(self._spelled(events, "release"))
        modern = lint_trace(self._spelled(events, "unlock"))
        assert legacy.rules() == modern.rules()
        assert legacy.ok == modern.ok and legacy.clean == modern.clean
        assert len(legacy) == len(modern)

    def test_expected_verdicts_per_scenario(self):
        verdicts = {
            name: lint_trace(self._spelled(events, "unlock")).rules()
            for name, events in _RELEASE_SCENARIOS
        }
        assert verdicts["guarded_clean"] == []
        assert "RACE001" in verdicts["disjoint_locks_race"]
        assert "DEAD001" in verdicts["lock_order_deadlock"]
        assert "RACE003" in verdicts["release_without_acquire"]

    def test_payload_less_release_is_scheduler_event(self):
        """Bare ``release`` (no lock=) is a job release: ignored by the
        checker under the legacy spelling, never treated as an unlock."""
        trace = TraceRecorder()
        trace.record(0, "release", job="wheel-speed#0")
        assert lint_trace(trace).clean


# ------------------------------------------------------------- integration
class TestEmissionIntegration:
    def test_sync_engine_emits_checkable_deadlock_trace(self):
        sim = Simulator()
        trace = TraceRecorder()
        engine = SynchronizationEngine(sim, trace=trace)
        # cpu 0 nests 0 -> 1, cpu 1 nests 1 -> 0: classic order inversion.
        engine.acquire(0, cpu=0)
        engine.acquire(1, cpu=0)
        engine.release(1, cpu=0)
        engine.release(0, cpu=0)
        engine.acquire(1, cpu=1)
        engine.acquire(0, cpu=1)
        engine.release(0, cpu=1)
        engine.release(1, cpu=1)
        report = lint_trace(trace)
        assert report.by_rule("DEAD001")

    def test_sync_engine_handover_records_new_owner(self):
        sim = Simulator()
        trace = TraceRecorder()
        engine = SynchronizationEngine(sim, trace=trace)
        engine.acquire(0, cpu=0)
        engine.acquire(0, cpu=1)  # queued behind cpu 0
        engine.release(0, cpu=0)  # FIFO handover to cpu 1
        engine.release(0, cpu=1)
        kinds = [(e.kind, e.cpu) for e in trace]
        assert kinds == [
            ("acquire", 0),
            ("unlock", 0),
            ("acquire", 1),
            ("unlock", 1),
        ]
        assert lint_trace(trace).clean

    def test_sync_engine_barrier_events(self):
        sim = Simulator()
        trace = TraceRecorder()
        engine = SynchronizationEngine(sim, trace=trace)
        engine.configure_barrier(0, width=2)
        engine.barrier_wait(0, cpu=0)
        engine.barrier_wait(0, cpu=1)
        assert lint_trace(trace).clean

    def test_isa_executors_expose_real_race(self):
        """Two cores storing to the same DDR word, unguarded, end to end."""
        source = """
            addi r3, r0, 1
            swi  r3, r0, 0x40010000
            halt
        """
        soc = SoC(SoCConfig(n_cpus=2))
        trace = TraceRecorder()
        for cpu in range(2):
            program = link(source, routines=())
            executor = ISAExecutor(soc.core(cpu), program, trace=trace)
            soc.sim.process(executor.run())
        soc.sim.run()
        report = lint_trace(trace)
        assert report.by_rule("RACE001")
