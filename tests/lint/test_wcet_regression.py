"""WCET soundness regression: for every asmlib kernel driver, across a
seed sweep, measured executor cycles never exceed the verified WCET
bound, which never exceeds the annotation-based bound.  Also emits the
tightness report (bound/measured ratios) so regressions in pruning
quality show up in the test log."""

import pytest

from repro.lint.absint import (
    EXPECTED_COUNTED,
    audit_kernel,
    audit_kernels,
    format_audit,
)

pytestmark = pytest.mark.lint

SEEDS = (1, 2, 3)


@pytest.fixture(scope="module")
def audits():
    return audit_kernels(seeds=SEEDS)


def test_covers_every_kernel_and_seed(audits):
    assert {(a.kernel, a.seed) for a in audits} == {
        (kernel, seed) for kernel in EXPECTED_COUNTED for seed in SEEDS
    }


def test_measured_never_exceeds_verified_bound(audits):
    for audit in audits:
        assert audit.wcet.verified_cycles is not None, audit.kernel
        assert audit.measured <= audit.wcet.verified_cycles, (
            f"{audit.kernel} seed={audit.seed}: measured {audit.measured} "
            f"> verified bound {audit.wcet.verified_cycles}"
        )


def test_verified_never_exceeds_annotated_bound(audits):
    for audit in audits:
        assert audit.wcet.annotated_cycles is not None, audit.kernel
        assert audit.wcet.verified_cycles <= audit.wcet.annotated_cycles, (
            f"{audit.kernel} seed={audit.seed}"
        )


def test_every_audit_check_passes(audits):
    failing = [
        (audit.kernel, audit.seed, name, detail)
        for audit in audits
        for name, ok, detail in audit.checks
        if not ok
    ]
    assert not failing, failing


def test_counted_loops_bound_their_measured_executions(audits):
    for audit in audits:
        for label in EXPECTED_COUNTED[audit.kernel]:
            assert label in audit.loop_executions, (audit.kernel, label)
            assert audit.loop_executions[label] >= 1, (audit.kernel, label)


def test_at_least_one_kernel_strictly_tighter(audits):
    tightened = sorted({a.kernel for a in audits if a.wcet.tightened})
    assert tightened, "no kernel shows verified < annotated"


def test_tightness_report_renders(audits, capsys):
    report = format_audit(audits)
    # One row per (kernel, seed) plus header and summary line.
    assert len(report.splitlines()) == len(audits) + 2
    assert "ver/meas" in report and "ann/meas" in report
    print(report)  # visible with pytest -s / on failure re-runs


def test_single_kernel_audit_is_deterministic():
    first = audit_kernel("array_sum", seed=2)
    second = audit_kernel("array_sum", seed=2)
    assert first.measured == second.measured
    assert first.wcet.verified_cycles == second.wcet.verified_cycles
    assert first.loop_executions == second.loop_executions
