"""Fault campaigns over the pmap pool, caching, and the CLI."""

import io
import json

import pytest

from repro.experiments.runner import fault_campaign
from repro.faults import cli
from repro.perf.cache import RunCache

pytestmark = pytest.mark.faults


def test_campaign_rows_per_seed():
    result = fault_campaign(n_runs=3, seed=10, recovery=True)
    assert len(result.rows) == 3
    assert [row["seed"] for row in result.rows] == [10, 11, 12]
    for row in result.rows:
        assert row["faults_fired"] > 0
        assert row["finished_jobs"] > 0


def test_campaign_is_deterministic():
    first = fault_campaign(n_runs=2, seed=0, recovery=True)
    second = fault_campaign(n_runs=2, seed=0, recovery=True)
    assert first.rows == second.rows


def test_campaign_parallel_matches_serial():
    serial = fault_campaign(n_runs=3, seed=0, recovery=True, max_workers=1)
    parallel = fault_campaign(n_runs=3, seed=0, recovery=True, max_workers=2)
    assert serial.rows == parallel.rows


def test_campaign_cells_are_cached(tmp_path):
    cache = RunCache(tmp_path / "cache")
    cold = fault_campaign(n_runs=2, seed=5, recovery=True, cache=cache)
    assert cache.misses == 2 and cache.stores == 2
    warm = fault_campaign(n_runs=2, seed=5, recovery=True, cache=cache)
    assert cache.hits == 2
    assert warm.rows == cold.rows


def test_recovery_off_records_misses():
    on = fault_campaign(n_runs=2, seed=0, recovery=True)
    off = fault_campaign(n_runs=2, seed=0, recovery=False)
    assert sum(row["deadline_misses"] for row in on.rows) == 0
    assert sum(row["deadline_misses"] for row in off.rows) > 0
    assert sum(row["task_retries"] for row in off.rows) == 0


def test_campaign_writes_perfetto_trace(tmp_path):
    out = tmp_path / "faults.json"
    fault_campaign(n_runs=1, seed=0, recovery=True, perfetto_out=str(out))
    payload = json.loads(out.read_text())
    names = {event.get("cat") for event in payload["traceEvents"]}
    assert "fault_injected" in names


def test_min_gap_matches_fault_model_zero_misses():
    # Acceptance (d): plans spaced at the analysed interarrival keep
    # every deadline when recovery is enabled.
    result = fault_campaign(n_runs=3, seed=0, recovery=True, min_gap=100_000)
    assert sum(row["deadline_misses"] for row in result.rows) == 0
    assert sum(row["faults_fired"] for row in result.rows) > 0


# ------------------------------------------------------------------- CLI
def test_cli_self_check_passes():
    out = io.StringIO()
    assert cli.self_check(out=out) == 0
    text = out.getvalue()
    assert "self-check: PASS" in text
    assert "FAIL" not in text.replace("PASS/FAIL", "")


def test_cli_plan_prints_json(capsys):
    assert cli.main(["plan", "--seed", "3", "--faults", "2"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["seed"] == 3
    assert len(payload["events"]) == 2


def test_cli_campaign_runs(capsys):
    assert cli.main(["campaign", "--runs", "1", "--seed", "0"]) == 0
    out = capsys.readouterr().out
    assert "deadline_misses" in out
    assert "campaign: 1 run(s)" in out


def test_cli_no_command_prints_help():
    assert cli.main([]) == 2
