"""Fault-aware response-time analysis and the configuration lint."""

import pytest

from repro.analysis import (
    FaultModel,
    analyse_taskset,
    fault_aware_response_time,
    worst_case_response_time,
)
from repro.analysis.response_time import RecurrenceDivergenceError
from repro.core.task import PeriodicTask
from repro.faults.scenarios import demo_bindings, demo_taskset
from repro.kernel.microkernel import RecoveryConfig, TaskBinding
from repro.lint.tasks import check_fault_config, lint_fault_config

pytestmark = pytest.mark.faults


def _pair():
    hi = PeriodicTask(name="hi", wcet=2_000, period=20_000, cpu=0)
    lo = PeriodicTask(name="lo", wcet=5_000, period=50_000, cpu=0)
    return hi, lo


def test_fault_aware_wcrt_at_least_fault_free():
    hi, lo = _pair()
    plain = worst_case_response_time(lo, [hi, lo])
    faulty = fault_aware_response_time(lo, [hi, lo], min_interarrival=100_000)
    assert faulty.value >= plain.value
    # One recovery re-execution of the largest WCET lands on top.
    assert faulty.value >= plain.value + max(hi.wcet, lo.wcet)


def test_shorter_interarrival_is_more_pessimistic():
    hi, lo = _pair()
    rare = fault_aware_response_time(lo, [hi, lo], min_interarrival=1_000_000)
    frequent = fault_aware_response_time(lo, [hi, lo], min_interarrival=15_000)
    assert frequent.value >= rare.value


def test_explicit_recovery_cost_overrides_default():
    hi, lo = _pair()
    small = fault_aware_response_time(
        lo, [hi, lo], min_interarrival=100_000, recovery_cost=100)
    big = fault_aware_response_time(
        lo, [hi, lo], min_interarrival=100_000, recovery_cost=4_000)
    assert big.value > small.value


def test_fault_model_validation():
    with pytest.raises(ValueError):
        FaultModel(min_interarrival=0)
    with pytest.raises(ValueError):
        FaultModel(min_interarrival=1_000, recovery_cost=-1)


def test_analyse_taskset_with_fault_model_adds_columns():
    taskset = demo_taskset()
    report = analyse_taskset(taskset, n_cpus=2,
                             fault_model=FaultModel(min_interarrival=100_000))
    rows = [row for group in report.per_cpu.values() for row in group]
    assert rows
    for row in rows:
        assert row["wcrt_faulty"] >= row["wcrt"]
    assert report.schedulable


def test_unschedulable_under_aggressive_fault_rate():
    # Faults every 5k cycles swamp the tight task's slack.
    taskset = demo_taskset()
    report = analyse_taskset(taskset, n_cpus=2,
                             fault_model=FaultModel(min_interarrival=5_000))
    assert not report.schedulable


# ------------------------------------------------------------ config lint
def test_demo_fault_config_lints_clean():
    report = lint_fault_config(
        demo_taskset(), demo_bindings(), 2,
        recovery=RecoveryConfig(enabled=True, degradation_threshold=4,
                                shed_below_criticality=1),
    )
    assert report.ok, [str(d) for d in report.diagnostics]


def test_task010_rejects_oversized_retry_budget():
    bindings = dict(demo_bindings())
    bindings["tight"] = TaskBinding(criticality=2, retry_budget=50)
    report = lint_fault_config(demo_taskset(), bindings, 2)
    assert not report.ok
    assert any(d.rule == "TASK010" for d in report.diagnostics)
    with pytest.raises(Exception):
        check_fault_config(demo_taskset(), bindings, 2)


def test_task011_warns_on_unknown_task():
    bindings = dict(demo_bindings())
    bindings["ghost"] = TaskBinding()
    report = lint_fault_config(demo_taskset(), bindings, 2)
    assert report.ok  # warning only
    assert any(d.rule == "TASK011" for d in report.diagnostics)


def test_task011_warns_when_nothing_sheddable():
    bindings = {name: TaskBinding(criticality=5)
                for name in ("a", "b", "c", "tight")}
    report = lint_fault_config(
        demo_taskset(), bindings, 2,
        recovery=RecoveryConfig(enabled=True, degradation_threshold=1,
                                shed_below_criticality=1),
    )
    assert report.ok
    assert any(d.rule == "TASK011" for d in report.diagnostics)


def test_task011_errors_when_a_cpu_would_shed_everything():
    bindings = {name: TaskBinding(criticality=0)
                for name in ("a", "b", "c", "tight")}
    report = lint_fault_config(
        demo_taskset(), bindings, 2,
        recovery=RecoveryConfig(enabled=True, degradation_threshold=1,
                                shed_below_criticality=1),
    )
    assert not report.ok
    errors = [d for d in report.diagnostics if d.rule == "TASK011"]
    assert errors
