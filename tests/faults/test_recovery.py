"""Watchdog, bounded re-execution and graceful degradation."""

import pytest

from repro.faults.plan import FaultEvent, FaultPlan
from repro.faults.scenarios import (
    baseline_run,
    crash_plan,
    run_scenario,
    sustained_plan,
)
from repro.obs.metrics import MetricsRegistry

pytestmark = pytest.mark.faults


def test_fault_free_run_has_no_misses_or_faults():
    result = baseline_run()
    stats = result["stats"]
    assert stats["deadline_misses"] == 0
    assert stats["faults_injected"] == 0
    assert stats["task_retries"] == 0
    assert not stats["degraded"]


def test_watchdog_counts_unrecovered_crashes_as_misses():
    result = run_scenario(plan=crash_plan(), recovery=None)
    stats = result["stats"]
    assert stats["deadline_misses"] > 0
    assert stats["crashes_unrecovered"] == stats["deadline_misses"]
    assert stats["task_retries"] == 0
    misses = [e for e in result["trace"] if e.kind == "deadline_miss"]
    assert misses and all(e.info == "invalid" for e in misses)


def test_recovery_reexecutes_within_the_deadline():
    result = run_scenario(plan=crash_plan(), recovery={"enabled": True})
    stats = result["stats"]
    assert stats["deadline_misses"] == 0
    assert stats["task_retries"] > 0
    assert stats["crashes_unrecovered"] == 0
    retried = [j for j in result["jobs"] if j[8] > 0]  # retries field
    assert retried


def test_retry_budget_is_bounded():
    # Two crashes of the same instance against a budget of 1: the
    # second re-execution is refused and the instance completes invalid.
    plan = FaultPlan(events=(
        FaultEvent(kind="task_crash", time=30_000, task="tight"),
        FaultEvent(kind="task_crash", time=31_000, task="tight"),
    ))
    result = run_scenario(plan=plan, recovery={"enabled": True})
    stats = result["stats"]
    # demo binding for tight allows 2 retries, so both are absorbed...
    assert stats["task_retries"] == 2
    assert stats["deadline_misses"] == 0

    triple = FaultPlan(events=(
        FaultEvent(kind="task_crash", time=30_000, task="tight"),
        FaultEvent(kind="task_crash", time=31_000, task="tight"),
        FaultEvent(kind="task_crash", time=32_000, task="tight"),
    ))
    result = run_scenario(plan=triple, recovery={"enabled": True})
    stats = result["stats"]
    # ...but a third crash exhausts the budget.
    assert stats["task_retries"] == 2
    assert stats["crashes_unrecovered"] == 1
    assert stats["deadline_misses"] == 1


def test_wcet_overrun_extends_execution():
    plan = FaultPlan(events=(
        FaultEvent(kind="wcet_overrun", time=30_000, task="tight", arg=2_000),
    ))
    faulty = run_scenario(plan=plan)
    clean = baseline_run()
    assert faulty["stats"]["faults_injected"] == 1
    # The overrun instance finishes later than in the clean run.
    finish = lambda r: {
        (j[0], j[1]): j[4] for j in r["jobs"]
    }
    overrun_finishes = finish(faulty)
    clean_finishes = finish(clean)
    later = [
        key for key in clean_finishes
        if key in overrun_finishes
        and key[0] == "tight"
        and overrun_finishes[key] > clean_finishes[key]
    ]
    assert later


def test_degradation_sheds_low_criticality_tasks():
    result = run_scenario(
        plan=sustained_plan(),
        recovery={"enabled": True, "degradation_threshold": 4,
                  "shed_below_criticality": 1},
    )
    stats = result["stats"]
    assert stats["degraded"]
    assert stats["jobs_shed"] > 0
    shed_jobs = [j for j in result["jobs"] if j[10]]  # shed field
    assert shed_jobs and all(j[0] == "c" for j in shed_jobs)
    kinds = [e.kind for e in result["trace"]]
    assert "degrade" in kinds and "shed" in kinds


def test_degradation_never_trips_below_threshold():
    result = run_scenario(
        plan=crash_plan(),
        recovery={"enabled": True, "degradation_threshold": 100,
                  "shed_below_criticality": 1},
    )
    assert not result["stats"]["degraded"]
    assert result["stats"]["jobs_shed"] == 0


def test_deadline_miss_metrics_counter_labelled_by_task_and_cpu():
    # Satellite: deadline_misses_total{task,cpu} increments on misses.
    from repro.faults.injector import FaultInjector
    from repro.faults.scenarios import demo_taskset
    from repro.hw.soc import SoC, SoCConfig
    from repro.kernel import DualPriorityMicrokernel

    registry = MetricsRegistry()
    soc = SoC(SoCConfig(n_cpus=2, tick_cycles=20_000, chunk_cycles=1_000))
    kernel = DualPriorityMicrokernel(soc, demo_taskset(), metrics=registry)
    FaultInjector(kernel, crash_plan()).arm()
    kernel.run(until=400_000)

    assert kernel.deadline_misses > 0
    snap = registry.snapshot()
    assert "deadline_misses_total" in snap
    series = snap["deadline_misses_total"]["series"]
    total = sum(row["value"] for row in series)
    assert total == kernel.deadline_misses
    for row in series:
        assert row["labels"]["task"] == "tight"
        assert "cpu" in row["labels"]


def test_kernel_stats_surface_fault_counters():
    result = run_scenario(plan=crash_plan(), recovery={"enabled": True})
    stats = result["stats"]
    for key in ("deadline_misses", "faults_injected", "task_retries",
                "crashes_unrecovered", "jobs_shed", "degraded"):
        assert key in stats
