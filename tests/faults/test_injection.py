"""Hardware fault surfaces and the injector: determinism and identity."""

import pytest

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultEvent, FaultPlan
from repro.faults.scenarios import (
    baseline_run,
    crash_plan,
    demo_taskset,
    run_scenario,
)
from repro.hw.bus import OPBBus
from repro.hw.intc import MultiprocessorInterruptController
from repro.hw.memory import WordStorage
from repro.hw.soc import SoC, SoCConfig
from repro.hw.timer import SystemTimer
from repro.kernel import DualPriorityMicrokernel
from repro.sim import Simulator

pytestmark = pytest.mark.faults


# -------------------------------------------------------------- hw surfaces
def test_memory_bit_flip_corrupts_and_counts():
    mem = WordStorage(base=0x4000_0000, size=64, name="test-ram")
    mem.write_word(0x4000_0000, 0b1010)
    value = mem.flip_bit(0x4000_0000, 1)
    assert value == 0b1000
    assert mem.read_word(0x4000_0000) == 0b1000
    assert mem.bitflips == 1
    with pytest.raises(ValueError):
        mem.flip_bit(0x4000_0000, 32)


def test_timer_glitch_swallows_a_tick_but_keeps_cadence():
    sim = Simulator()
    intc = MultiprocessorInterruptController(sim, 1)
    intc.connect_cpu(0, lambda asserted: None)
    timer = SystemTimer(sim, intc, period=100)
    sim.schedule_at(50, lambda: timer.glitch(1))
    timer.start()
    sim.run(until=450)
    # Ticks would fire at 100..400; the first is suppressed.
    assert timer.glitches == 1
    assert timer.ticks == 3
    # The cadence is unshifted: the next tick is still on the grid.
    assert timer.next_tick % 100 == 0


def _ipi_fixture():
    sim = Simulator()
    intc = MultiprocessorInterruptController(sim, 2)
    asserted_at = []
    intc.connect_cpu(0, lambda asserted: None)
    intc.connect_cpu(1, lambda asserted: asserted_at.append((sim.now, asserted)))
    return sim, intc, asserted_at


def test_ipi_drop_window():
    sim, intc, asserted_at = _ipi_fixture()
    intc.inject_ipi_fault("drop", until=100)
    sim.schedule_at(50, lambda: intc.send_ipi(0, 1))
    sim.schedule_at(200, lambda: intc.send_ipi(0, 1))
    sim.run()
    assert intc.ipis_dropped == 1
    # Only the post-window IPI asserted the line.
    assert [t for t, up in asserted_at if up] == [200]


def test_ipi_delay_window():
    sim, intc, asserted_at = _ipi_fixture()
    intc.inject_ipi_fault("delay", until=100, arg=40)
    sim.schedule_at(50, lambda: intc.send_ipi(0, 1))
    sim.run()
    assert intc.ipis_delayed == 1
    assert [t for t, up in asserted_at if up] == [90]


def test_ipi_duplicate_window():
    sim, intc, asserted_at = _ipi_fixture()
    intc.inject_ipi_fault("duplicate", until=100)
    sim.schedule_at(50, lambda: intc.send_ipi(0, 1))
    sim.run()
    assert intc.ipis_duplicated == 1
    # The original plus its duplicate are both offered to the target.
    assert intc.pending_for(1) == 2


def test_ipi_fault_window_disarms_after_until():
    sim, intc, asserted_at = _ipi_fixture()
    intc.inject_ipi_fault("drop", until=100)
    sim.schedule_at(150, lambda: intc.send_ipi(0, 1))
    sim.schedule_at(160, lambda: intc.send_ipi(0, 1))
    sim.run()
    assert intc.ipis_dropped == 0
    assert intc.pending_for(1) == 2


def test_bus_stall_accounts_cycles():
    sim = Simulator()
    bus = OPBBus(sim)
    sim.process(bus.stall(250))
    sim.run()
    assert bus.stats.stalls_injected == 1
    assert bus.stats.stall_cycles == 250


# ------------------------------------------------------------ the injector
def _kernel_fixture():
    soc = SoC(SoCConfig(n_cpus=2, tick_cycles=20_000, chunk_cycles=1_000))
    kernel = DualPriorityMicrokernel(soc, demo_taskset())
    return soc, kernel


def test_injector_cannot_arm_twice():
    _, kernel = _kernel_fixture()
    injector = FaultInjector(kernel, crash_plan())
    injector.arm()
    with pytest.raises(RuntimeError):
        injector.arm()


def test_injector_rejects_past_events():
    soc, kernel = _kernel_fixture()
    soc.sim.run(until=100)
    plan = FaultPlan(events=(
        FaultEvent(kind="task_crash", time=10, task="tight"),
    ))
    with pytest.raises(ValueError):
        FaultInjector(kernel, plan).arm()


def test_injected_run_replays_bit_for_bit():
    first = run_scenario(plan=crash_plan(), recovery={"enabled": True})
    second = run_scenario(plan=crash_plan(), recovery={"enabled": True})
    assert first == second


def test_zero_fault_plan_identical_to_no_injector():
    empty = run_scenario(plan=FaultPlan())
    baseline = baseline_run()
    assert empty["jobs"] == baseline["jobs"]
    assert empty["trace"] == baseline["trace"]
    assert empty["stats"] == baseline["stats"]
    assert empty["now"] == baseline["now"]


def test_fault_instants_land_in_the_trace():
    result = run_scenario(plan=crash_plan(), recovery={"enabled": True})
    kinds = {event.kind for event in result["trace"]}
    assert "fault_injected" in kinds
    assert "fault" in kinds
    assert "retry" in kinds


def test_injector_stats_count_fired_events():
    result = run_scenario(plan=crash_plan(), recovery={"enabled": True})
    stats = result["injector"]
    assert stats["planned"] == len(crash_plan())
    assert stats["fired"] == stats["planned"]
    assert stats["by_kind"] == {"task_crash": len(crash_plan())}
