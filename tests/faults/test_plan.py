"""Fault plans: validation, serialization, seeded generation."""

import pytest

from repro.faults.plan import (
    FAULT_KINDS,
    KERNEL_KINDS,
    FaultEvent,
    FaultPlan,
    random_plan,
)
from repro.perf.cache import cache_key

pytestmark = pytest.mark.faults


def test_event_validation_rejects_bad_kind():
    with pytest.raises(ValueError):
        FaultEvent(kind="cosmic_ray", time=100)


def test_event_validation_rejects_negative_time():
    with pytest.raises(ValueError):
        FaultEvent(kind="timer_glitch", time=-1, arg=1)


def test_kernel_faults_require_a_task():
    for kind in ("wcet_overrun", "task_crash"):
        with pytest.raises(ValueError):
            FaultEvent(kind=kind, time=100)


def test_bitflip_memory_requires_address_and_bit():
    with pytest.raises(ValueError):
        FaultEvent(kind="bitflip_memory", time=100)
    event = FaultEvent(kind="bitflip_memory", time=100, addr=0x4000_0000, arg=7)
    assert event.addr == 0x4000_0000


def test_every_kind_is_constructible():
    fixtures = {
        "ipi_drop": dict(duration=1_000),
        "ipi_duplicate": dict(duration=1_000),
        "ipi_delay": dict(duration=1_000, arg=50),
        "bus_stall": dict(duration=200),
        "timer_glitch": dict(arg=1),
        "bitflip_memory": dict(addr=0x4000_0000, arg=3),
        "bitflip_register": dict(cpu=0),
        "wcet_overrun": dict(task="a", arg=500),
        "task_crash": dict(task="a"),
    }
    assert set(fixtures) == set(FAULT_KINDS)
    for kind, kwargs in fixtures.items():
        FaultEvent(kind=kind, time=10, **kwargs)


def test_plan_json_round_trip():
    plan = random_plan(seed=3, horizon=200_000, tasks={"a": 5_000},
                       n_faults=3, name="rt")
    assert FaultPlan.from_json(plan.to_json()) == plan
    assert len(plan) == 3 and not plan.is_empty


def test_same_seed_same_plan_different_seed_differs():
    make = lambda s: random_plan(seed=s, horizon=300_000,
                                 tasks={"a": 5_000, "b": 7_000}, n_faults=4)
    assert make(1) == make(1)
    assert make(1) != make(2)


def test_plan_cache_key_is_content_addressed():
    plan = random_plan(seed=1, horizon=300_000, tasks={"a": 5_000}, n_faults=2)
    same = FaultPlan.from_dict(plan.to_dict())
    other = random_plan(seed=2, horizon=300_000, tasks={"a": 5_000}, n_faults=2)
    assert cache_key(plan=plan.to_dict()) == cache_key(plan=same.to_dict())
    assert cache_key(plan=plan.to_dict()) != cache_key(plan=other.to_dict())


def test_min_gap_spaces_kernel_events():
    plan = random_plan(seed=5, horizon=2_000_000, tasks={"a": 5_000},
                       n_faults=6, min_gap=100_000)
    assert plan.min_interarrival() >= 100_000
    assert all(e.kind in KERNEL_KINDS for e in plan.kernel_events())


def test_overrun_extra_capped_by_wcet():
    plan = random_plan(seed=9, horizon=1_000_000, tasks={"a": 4_000},
                       n_faults=8, kinds=("wcet_overrun",))
    for event in plan.events:
        assert 1 <= event.arg <= 4_000
